package store

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"agentgrid/internal/obs"
)

func rec(device, metric string, step int, value float64) obs.Record {
	return obs.Record{
		Site:   "site1",
		Device: device,
		Metric: metric,
		Value:  value,
		Step:   step,
		Time:   time.Unix(int64(1000+step), 0).UTC(),
	}
}

func TestAppendAndLatest(t *testing.T) {
	s := New(16)
	for i := 1; i <= 5; i++ {
		if err := s.Append(rec("h1", "cpu.util", i, float64(i*10))); err != nil {
			t.Fatal(err)
		}
	}
	p, ok := s.Latest("site1/h1/cpu.util")
	if !ok || p.Value != 50 || p.Step != 5 {
		t.Fatalf("Latest = %+v, %v", p, ok)
	}
	if _, ok := s.Latest("site1/h1/nope"); ok {
		t.Fatal("phantom series")
	}
	n, appends := s.Stats()
	if n != 1 || appends != 5 {
		t.Fatalf("Stats = %d, %d", n, appends)
	}
}

func TestAppendRejectsInvalid(t *testing.T) {
	s := New(4)
	bad := rec("", "cpu.util", 1, 1)
	if err := s.Append(bad); !errors.Is(err, obs.ErrNoDevice) {
		t.Fatalf("Append invalid = %v", err)
	}
}

func TestRingBufferEviction(t *testing.T) {
	s := New(4)
	for i := 1; i <= 10; i++ {
		s.Append(rec("h1", "m", i, float64(i)))
	}
	pts := s.Window("site1/h1/m", 100)
	if len(pts) != 4 {
		t.Fatalf("kept %d points, want 4", len(pts))
	}
	for i, p := range pts {
		if want := float64(7 + i); p.Value != want {
			t.Fatalf("pts[%d] = %v, want %v", i, p.Value, want)
		}
	}
}

func TestWindowAndRange(t *testing.T) {
	s := New(64)
	for i := 1; i <= 20; i++ {
		s.Append(rec("h1", "m", i, float64(i)))
	}
	w := s.Window("site1/h1/m", 5)
	if len(w) != 5 || w[0].Value != 16 || w[4].Value != 20 {
		t.Fatalf("Window = %+v", w)
	}
	r := s.Range("site1/h1/m", 5, 8)
	if len(r) != 4 || r[0].Step != 5 || r[3].Step != 8 {
		t.Fatalf("Range = %+v", r)
	}
	if len(s.Range("site1/h1/m", 100, 200)) != 0 {
		t.Fatal("empty range not empty")
	}
	if len(s.Window("ghost", 5)) != 0 {
		t.Fatal("window of ghost series not empty")
	}
}

func TestIndexes(t *testing.T) {
	s := New(16)
	s.Append(rec("h1", "cpu.util", 1, 1))
	s.Append(rec("h1", "mem.free", 1, 1))
	s.Append(rec("h2", "cpu.util", 1, 1))

	keys := s.Keys()
	if len(keys) != 3 {
		t.Fatalf("Keys = %v", keys)
	}
	dev := s.SeriesForDevice("site1", "h1")
	if len(dev) != 2 || dev[0] != "site1/h1/cpu.util" || dev[1] != "site1/h1/mem.free" {
		t.Fatalf("SeriesForDevice = %v", dev)
	}
	met := s.SeriesForMetric("cpu.util")
	if len(met) != 2 {
		t.Fatalf("SeriesForMetric = %v", met)
	}
	devs := s.Devices()
	if len(devs) != 2 || devs[0] != "site1/h1" || devs[1] != "site1/h2" {
		t.Fatalf("Devices = %v", devs)
	}
	// Re-appending to an existing series must not duplicate index entries.
	s.Append(rec("h1", "cpu.util", 2, 2))
	if len(s.SeriesForDevice("site1", "h1")) != 2 {
		t.Fatal("index duplicated")
	}
}

func TestAppendBatch(t *testing.T) {
	s := New(16)
	b := &obs.Batch{Collector: "c", Records: []obs.Record{
		rec("h1", "cpu.util", 1, 10),
		rec("h2", "cpu.util", 1, 20),
	}}
	if err := s.AppendBatch(b); err != nil {
		t.Fatal(err)
	}
	if n, _ := s.Stats(); n != 2 {
		t.Fatalf("series = %d", n)
	}
	b.Records = append(b.Records, obs.Record{Metric: "x"})
	if err := s.AppendBatch(b); err == nil {
		t.Fatal("invalid batch accepted")
	}
}

func TestParseKey(t *testing.T) {
	site, dev, metric, err := ParseKey("s1/h1/cpu.util")
	if err != nil || site != "s1" || dev != "h1" || metric != "cpu.util" {
		t.Fatalf("ParseKey = %q %q %q %v", site, dev, metric, err)
	}
	// Metric itself may contain slashes? No: metric has dots; but a
	// malformed key must error.
	for _, bad := range []string{"", "a", "a/b", "a//b", "/a/b", "a/b/"} {
		if _, _, _, err := ParseKey(bad); err == nil {
			t.Errorf("ParseKey(%q) accepted", bad)
		}
	}
}

func TestDefaultMaxPoints(t *testing.T) {
	s := New(0)
	if s.maxPoints != DefaultMaxPoints {
		t.Fatalf("maxPoints = %d", s.maxPoints)
	}
}

func TestConcurrentAppendsAndReads(t *testing.T) {
	s := New(128)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			dev := string(rune('a' + w))
			for i := 0; i < 100; i++ {
				s.Append(rec(dev, "cpu.util", i, float64(i)))
				s.Latest("site1/" + dev + "/cpu.util")
				s.Window("site1/"+dev+"/cpu.util", 10)
				s.Keys()
			}
		}(w)
	}
	wg.Wait()
	if n, appends := s.Stats(); n != 8 || appends != 800 {
		t.Fatalf("Stats = %d, %d", n, appends)
	}
}

// Property: a series window always returns points in non-decreasing step
// order and never exceeds the ring capacity.
func TestWindowInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		cap := 1 + r.Intn(32)
		s := New(cap)
		n := r.Intn(200)
		for i := 0; i < n; i++ {
			s.Append(rec("h", "m", i, r.Float64()))
		}
		pts := s.Window("site1/h/m", 1000)
		if len(pts) > cap {
			return false
		}
		want := n
		if want > cap {
			want = cap
		}
		if len(pts) != want {
			return false
		}
		for i := 1; i < len(pts); i++ {
			if pts[i-1].Step >= pts[i].Step {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
