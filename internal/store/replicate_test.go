package store

import (
	"errors"
	"testing"
)

func TestSnapshotRestore(t *testing.T) {
	s := New(8)
	for i := 1; i <= 5; i++ {
		s.Append(rec("h1", "cpu.util", i, float64(i)))
		s.Append(rec("h2", "mem.free", i, float64(i*2)))
	}
	snap := s.Snapshot()
	raw, err := MarshalSnapshot(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := UnmarshalSnapshot(raw)
	if err != nil {
		t.Fatal(err)
	}

	fresh := New(8)
	if err := fresh.Restore(decoded); err != nil {
		t.Fatal(err)
	}
	if got := fresh.Keys(); len(got) != 2 {
		t.Fatalf("restored keys = %v", got)
	}
	p, ok := fresh.Latest("site1/h2/mem.free")
	if !ok || p.Value != 10 {
		t.Fatalf("restored latest = %+v, %v", p, ok)
	}
	// Indexes rebuilt too.
	if len(fresh.SeriesForDevice("site1", "h1")) != 1 {
		t.Fatal("device index not rebuilt")
	}
	if len(fresh.SeriesForMetric("mem.free")) != 1 {
		t.Fatal("metric index not rebuilt")
	}
}

func TestRestoreErrors(t *testing.T) {
	s := New(4)
	if err := s.Restore(nil); err == nil {
		t.Fatal("nil snapshot accepted")
	}
	bad := &Snapshot{Series: map[string][]Point{"malformed": {}}}
	if err := s.Restore(bad); err == nil {
		t.Fatal("malformed key accepted")
	}
	if _, err := UnmarshalSnapshot([]byte("{nope")); err == nil {
		t.Fatal("corrupt snapshot accepted")
	}
}

func TestReplicaSetWritesAll(t *testing.T) {
	rs, err := NewReplicaSet(3, 16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 4; i++ {
		if err := rs.Append(rec("h1", "cpu.util", i, float64(i))); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		st, ok := rs.Replica(i)
		if !ok {
			t.Fatalf("replica %d missing", i)
		}
		p, ok := st.Latest("site1/h1/cpu.util")
		if !ok || p.Value != 4 {
			t.Fatalf("replica %d latest = %+v", i, p)
		}
	}
	if rs.LiveCount() != 3 {
		t.Fatalf("LiveCount = %d", rs.LiveCount())
	}
}

func TestReplicaSetFailover(t *testing.T) {
	rs, _ := NewReplicaSet(2, 16)
	rs.Append(rec("h1", "m", 1, 42))

	if err := rs.Fail(0); err != nil {
		t.Fatal(err)
	}
	p, ok, err := rs.Latest("site1/h1/m")
	if err != nil || !ok || p.Value != 42 {
		t.Fatalf("failover read = %+v, %v, %v", p, ok, err)
	}
	// Writes continue to the survivor only.
	rs.Append(rec("h1", "m", 2, 43))
	w, err := rs.Window("site1/h1/m", 10)
	if err != nil || len(w) != 2 {
		t.Fatalf("Window after failover = %v, %v", w, err)
	}
}

func TestReplicaSetRepair(t *testing.T) {
	rs, _ := NewReplicaSet(2, 16)
	rs.Append(rec("h1", "m", 1, 1))
	rs.Fail(1)
	rs.Append(rec("h1", "m", 2, 2)) // missed by replica 1

	if err := rs.Repair(1); err != nil {
		t.Fatal(err)
	}
	if rs.LiveCount() != 2 {
		t.Fatalf("LiveCount = %d", rs.LiveCount())
	}
	st, _ := rs.Replica(1)
	w := st.Window("site1/h1/m", 10)
	if len(w) != 2 || w[1].Value != 2 {
		t.Fatalf("repaired replica window = %+v", w)
	}
	// New writes reach the repaired replica.
	rs.Append(rec("h1", "m", 3, 3))
	st, _ = rs.Replica(1)
	if p, ok := st.Latest("site1/h1/m"); !ok || p.Value != 3 {
		t.Fatalf("repaired replica not receiving writes: %+v", p)
	}
}

func TestReplicaSetAllDown(t *testing.T) {
	rs, _ := NewReplicaSet(2, 16)
	rs.Fail(0)
	rs.Fail(1)
	if err := rs.Append(rec("h1", "m", 1, 1)); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Append all-down = %v", err)
	}
	if _, _, err := rs.Latest("k"); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Latest all-down = %v", err)
	}
	if _, err := rs.Window("k", 1); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("Window all-down = %v", err)
	}
	// Repairing replica 0 when nothing is live re-enables it as-is.
	if err := rs.Repair(0); err != nil {
		t.Fatalf("Repair with no live peer = %v", err)
	}
	if rs.LiveCount() != 1 {
		t.Fatal("repair did not revive")
	}
}

func TestReplicaSetValidation(t *testing.T) {
	if _, err := NewReplicaSet(0, 4); err == nil {
		t.Fatal("zero replicas accepted")
	}
	rs, _ := NewReplicaSet(1, 4)
	if err := rs.Fail(5); err == nil {
		t.Fatal("out-of-range Fail accepted")
	}
	if err := rs.Repair(-1); err == nil {
		t.Fatal("out-of-range Repair accepted")
	}
	if _, ok := rs.Replica(9); ok {
		t.Fatal("out-of-range Replica returned ok")
	}
	bad := rec("", "m", 1, 1)
	if err := rs.Append(bad); err == nil {
		t.Fatal("invalid record accepted by replica set")
	}
}
