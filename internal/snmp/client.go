package snmp

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
	"time"
)

// Client is the manager-side endpoint the collector grid uses to query
// device agents. One client can talk to many devices; each call names the
// target address. Safe for concurrent use (each request uses its own
// ephemeral UDP socket, as managers traditionally do).
type Client struct {
	community string
	timeout   time.Duration
	retries   int
	reqID     atomic.Uint32
}

// ClientOption configures a Client.
type ClientOption func(*Client)

// WithTimeout sets the per-attempt response timeout (default 2s).
func WithTimeout(d time.Duration) ClientOption {
	return func(c *Client) { c.timeout = d }
}

// WithRetries sets how many times a timed-out request is retried
// (default 2, meaning up to 3 attempts).
func WithRetries(n int) ClientOption {
	return func(c *Client) { c.retries = n }
}

// NewClient returns a manager-side client using the given community.
func NewClient(community string, opts ...ClientOption) *Client {
	c := &Client{community: community, timeout: 2 * time.Second, retries: 2}
	for _, opt := range opts {
		opt(c)
	}
	return c
}

// Client errors.
var (
	ErrTimeout       = errors.New("snmp: request timed out")
	ErrServerError   = errors.New("snmp: server returned error status")
	ErrResponseShape = errors.New("snmp: malformed response")
)

// ServerStatusError carries the protocol error status of a response.
type ServerStatusError struct {
	Status ErrorStatus
	Index  uint32
}

// Error implements the error interface.
func (e *ServerStatusError) Error() string {
	return fmt.Sprintf("snmp: %s at varbind %d", e.Status, e.Index)
}

// Is makes errors.Is(err, ErrServerError) match any status error.
func (e *ServerStatusError) Is(target error) bool { return target == ErrServerError }

// Get fetches the exact OIDs from the device at addr.
func (c *Client) Get(ctx context.Context, addr string, oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: NullValue()}
	}
	resp, err := c.roundTrip(ctx, addr, &PDU{
		Community: c.community,
		Type:      GetRequest,
		VarBinds:  vbs,
	})
	if err != nil {
		return nil, err
	}
	if len(resp.VarBinds) != len(oids) {
		return nil, fmt.Errorf("%w: %d varbinds for %d oids", ErrResponseShape, len(resp.VarBinds), len(oids))
	}
	return resp.VarBinds, nil
}

// GetNext fetches the lexicographic successors of the given OIDs.
func (c *Client) GetNext(ctx context.Context, addr string, oids ...OID) ([]VarBind, error) {
	vbs := make([]VarBind, len(oids))
	for i, o := range oids {
		vbs[i] = VarBind{OID: o, Value: NullValue()}
	}
	resp, err := c.roundTrip(ctx, addr, &PDU{
		Community: c.community,
		Type:      GetNextRequest,
		VarBinds:  vbs,
	})
	if err != nil {
		return nil, err
	}
	return resp.VarBinds, nil
}

// Set writes the given varbinds on the device.
func (c *Client) Set(ctx context.Context, addr string, vbs ...VarBind) error {
	_, err := c.roundTrip(ctx, addr, &PDU{
		Community: c.community,
		Type:      SetRequest,
		VarBinds:  vbs,
	})
	return err
}

// Walk retrieves every object in the subtree rooted at prefix via
// repeated GETNEXT, in tree order.
func (c *Client) Walk(ctx context.Context, addr string, prefix OID) ([]VarBind, error) {
	var out []VarBind
	cur := prefix
	for {
		vbs, err := c.GetNext(ctx, addr, cur)
		if err != nil {
			var se *ServerStatusError
			if errors.As(err, &se) && se.Status == NoSuchName {
				return out, nil // walked off the end of the MIB
			}
			return out, err
		}
		if len(vbs) != 1 {
			return out, ErrResponseShape
		}
		vb := vbs[0]
		if !vb.OID.HasPrefix(prefix) {
			return out, nil // left the subtree
		}
		if vb.OID.Compare(cur) <= 0 {
			return out, fmt.Errorf("%w: GETNEXT did not advance (%s)", ErrResponseShape, vb.OID)
		}
		out = append(out, vb)
		cur = vb.OID
	}
}

// roundTrip sends the PDU and waits for the matching response, retrying
// timeouts.
func (c *Client) roundTrip(ctx context.Context, addr string, req *PDU) (*PDU, error) {
	req.RequestID = c.reqID.Add(1)
	raw, err := MarshalPDU(req)
	if err != nil {
		return nil, err
	}
	dst, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: resolve %s: %w", addr, err)
	}
	var lastErr error
	for attempt := 0; attempt <= c.retries; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		resp, err := c.attempt(ctx, dst, raw, req.RequestID)
		if err == nil {
			if resp.ErrorStatus != NoError {
				return nil, &ServerStatusError{Status: resp.ErrorStatus, Index: resp.ErrorIndex}
			}
			return resp, nil
		}
		lastErr = err
		if !errors.Is(err, ErrTimeout) {
			return nil, err
		}
	}
	return nil, fmt.Errorf("%w after %d attempts: %v", ErrTimeout, c.retries+1, lastErr)
}

func (c *Client) attempt(ctx context.Context, dst *net.UDPAddr, raw []byte, reqID uint32) (*PDU, error) {
	conn, err := net.DialUDP("udp", nil, dst)
	if err != nil {
		return nil, fmt.Errorf("snmp: dial: %w", err)
	}
	defer conn.Close()

	deadline := time.Now().Add(c.timeout)
	if d, ok := ctx.Deadline(); ok && d.Before(deadline) {
		deadline = d
	}
	if err := conn.SetDeadline(deadline); err != nil {
		return nil, err
	}
	if _, err := conn.Write(raw); err != nil {
		return nil, fmt.Errorf("snmp: send: %w", err)
	}
	buf := make([]byte, 64<<10)
	for {
		n, err := conn.Read(buf)
		if err != nil {
			if isTimeout(err) {
				return nil, ErrTimeout
			}
			return nil, fmt.Errorf("snmp: recv: %w", err)
		}
		resp, err := UnmarshalPDU(buf[:n])
		if err != nil {
			continue // garbage datagram; keep waiting
		}
		if resp.RequestID != reqID || resp.Type != GetResponse {
			continue // stale or unrelated response
		}
		return resp, nil
	}
}

func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// TrapListener receives trap PDUs from device agents.
type TrapListener struct {
	conn   *net.UDPConn
	traps  chan *PDU
	closed atomic.Bool
}

// NewTrapListener starts listening for traps on addr ("host:port").
func NewTrapListener(addr string, buffer int) (*TrapListener, error) {
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, err
	}
	l := &TrapListener{conn: conn, traps: make(chan *PDU, buffer)}
	go l.loop()
	return l, nil
}

// Addr returns the listener's UDP address.
func (l *TrapListener) Addr() string { return l.conn.LocalAddr().String() }

// Traps returns the channel of received traps. It is closed when the
// listener closes.
func (l *TrapListener) Traps() <-chan *PDU { return l.traps }

// Close stops the listener.
func (l *TrapListener) Close() error {
	if l.closed.Swap(true) {
		return nil
	}
	return l.conn.Close()
}

func (l *TrapListener) loop() {
	defer close(l.traps)
	buf := make([]byte, 64<<10)
	for {
		n, _, err := l.conn.ReadFromUDP(buf)
		if err != nil {
			return
		}
		pdu, err := UnmarshalPDU(buf[:n])
		if err != nil || pdu.Type != Trap {
			continue
		}
		select {
		case l.traps <- pdu:
		default: // drop when consumer is slow, as UDP would
		}
	}
}
