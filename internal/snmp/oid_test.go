package snmp

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestParseOID(t *testing.T) {
	cases := []struct {
		in      string
		want    string
		wantErr bool
	}{
		{".1.3.6.1", ".1.3.6.1", false},
		{"1.3.6.1", ".1.3.6.1", false},
		{"1", ".1", false},
		{"", "", true},
		{".", "", true},
		{"1..3", "", true},
		{"1.x.3", "", true},
		{"1.-2", "", true},
		{"1.4294967295", ".1.4294967295", false},
		{"1.4294967296", "", true}, // overflows uint32
	}
	for _, tc := range cases {
		got, err := ParseOID(tc.in)
		if tc.wantErr {
			if err == nil {
				t.Errorf("ParseOID(%q) accepted, got %v", tc.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseOID(%q) = %v", tc.in, err)
			continue
		}
		if got.String() != tc.want {
			t.Errorf("ParseOID(%q).String() = %q, want %q", tc.in, got.String(), tc.want)
		}
	}
}

func TestMustParseOIDPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParseOID did not panic")
		}
	}()
	MustParseOID("not an oid")
}

func TestOIDStringEmpty(t *testing.T) {
	if got := (OID{}).String(); got != "." {
		t.Fatalf("empty OID String = %q", got)
	}
}

func TestOIDCompare(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"1.2.3", "1.2.3", 0},
		{"1.2", "1.2.3", -1},
		{"1.2.3", "1.2", 1},
		{"1.2.3", "1.2.4", -1},
		{"1.3", "1.2.9.9", 1},
	}
	for _, tc := range cases {
		a, b := MustParseOID(tc.a), MustParseOID(tc.b)
		if got := a.Compare(b); got != tc.want {
			t.Errorf("Compare(%s,%s) = %d, want %d", tc.a, tc.b, got, tc.want)
		}
	}
	if !MustParseOID("1.2").Equal(MustParseOID("1.2")) {
		t.Error("Equal wrong")
	}
}

func TestOIDHasPrefix(t *testing.T) {
	o := MustParseOID("1.3.6.1.2.1")
	if !o.HasPrefix(MustParseOID("1.3.6")) {
		t.Error("prefix not detected")
	}
	if !o.HasPrefix(o) {
		t.Error("self prefix not detected")
	}
	if o.HasPrefix(MustParseOID("1.3.7")) {
		t.Error("false prefix")
	}
	if o.HasPrefix(MustParseOID("1.3.6.1.2.1.5")) {
		t.Error("longer prefix accepted")
	}
}

func TestOIDAppendClone(t *testing.T) {
	base := MustParseOID("1.3.6")
	child := base.Append(1, 2)
	if child.String() != ".1.3.6.1.2" {
		t.Fatalf("Append = %s", child)
	}
	if base.String() != ".1.3.6" {
		t.Fatal("Append mutated base")
	}
	c := base.Clone()
	c[0] = 9
	if base[0] == 9 {
		t.Fatal("Clone aliased")
	}
	// Append must not share backing arrays with the base.
	d1 := base.Append(7)
	d2 := base.Append(8)
	if d1[len(d1)-1] != 7 || d2[len(d2)-1] != 8 {
		t.Fatal("Append results interfered")
	}
}

func randOID(r *rand.Rand) OID {
	o := make(OID, 1+r.Intn(10))
	for i := range o {
		o[i] = uint32(r.Intn(50))
	}
	return o
}

func TestOIDParseStringRoundtrip(t *testing.T) {
	f := func(seed int64) bool {
		o := randOID(rand.New(rand.NewSource(seed)))
		parsed, err := ParseOID(o.String())
		return err == nil && parsed.Equal(o)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestOIDCompareIsTotalOrder(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		oids := make([]OID, 20)
		for i := range oids {
			oids[i] = randOID(r)
		}
		sort.Slice(oids, func(i, j int) bool { return oids[i].Compare(oids[j]) < 0 })
		for i := 1; i < len(oids); i++ {
			if oids[i-1].Compare(oids[i]) > 0 {
				return false
			}
			// Antisymmetry.
			if oids[i-1].Compare(oids[i]) != -oids[i].Compare(oids[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
