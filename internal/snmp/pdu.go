package snmp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// PDUType distinguishes protocol operations, mirroring SNMPv2c.
type PDUType byte

// PDU types.
const (
	GetRequest PDUType = iota + 1
	GetNextRequest
	SetRequest
	GetResponse
	Trap
)

// String returns the protocol name of the PDU type.
func (t PDUType) String() string {
	switch t {
	case GetRequest:
		return "get-request"
	case GetNextRequest:
		return "get-next-request"
	case SetRequest:
		return "set-request"
	case GetResponse:
		return "get-response"
	case Trap:
		return "trap"
	default:
		return fmt.Sprintf("pdu-type-%d", byte(t))
	}
}

// ErrorStatus is the per-PDU error field, as in SNMP.
type ErrorStatus byte

// Error statuses.
const (
	NoError ErrorStatus = iota
	TooBig
	NoSuchName
	BadValue
	ReadOnly
	GenErr
)

// String returns the protocol name of the status.
func (e ErrorStatus) String() string {
	switch e {
	case NoError:
		return "noError"
	case TooBig:
		return "tooBig"
	case NoSuchName:
		return "noSuchName"
	case BadValue:
		return "badValue"
	case ReadOnly:
		return "readOnly"
	case GenErr:
		return "genErr"
	default:
		return fmt.Sprintf("errorStatus-%d", byte(e))
	}
}

// ValueType tags a VarBind value.
type ValueType byte

// Value types. OpaqueFloat carries float64 metrics the way classic SNMP
// implementations smuggle floats inside Opaque.
const (
	TypeNull ValueType = iota
	TypeInteger
	TypeOctetString
	TypeCounter
	TypeGauge
	TypeTimeTicks
	TypeOpaqueFloat
	TypeOID
)

// Value is a typed SNMP value.
type Value struct {
	Type ValueType
	// Int holds TypeInteger, TypeCounter, TypeGauge and TypeTimeTicks.
	Int int64
	// Str holds TypeOctetString.
	Str string
	// Float holds TypeOpaqueFloat.
	Float float64
	// OID holds TypeOID.
	OID OID
}

// IntegerValue builds a TypeInteger value.
func IntegerValue(v int64) Value { return Value{Type: TypeInteger, Int: v} }

// CounterValue builds a TypeCounter value.
func CounterValue(v int64) Value { return Value{Type: TypeCounter, Int: v} }

// GaugeValue builds a TypeGauge value.
func GaugeValue(v int64) Value { return Value{Type: TypeGauge, Int: v} }

// TimeTicksValue builds a TypeTimeTicks value.
func TimeTicksValue(v int64) Value { return Value{Type: TypeTimeTicks, Int: v} }

// StringValue builds a TypeOctetString value.
func StringValue(s string) Value { return Value{Type: TypeOctetString, Str: s} }

// FloatValue builds a TypeOpaqueFloat value.
func FloatValue(f float64) Value { return Value{Type: TypeOpaqueFloat, Float: f} }

// OIDValue builds a TypeOID value.
func OIDValue(o OID) Value { return Value{Type: TypeOID, OID: o} }

// NullValue builds a TypeNull value (the placeholder in requests).
func NullValue() Value { return Value{Type: TypeNull} }

// AsFloat converts any numeric value to float64 for analysis.
func (v Value) AsFloat() (float64, bool) {
	switch v.Type {
	case TypeInteger, TypeCounter, TypeGauge, TypeTimeTicks:
		return float64(v.Int), true
	case TypeOpaqueFloat:
		return v.Float, true
	}
	return 0, false
}

// String renders the value for logs and reports.
func (v Value) String() string {
	switch v.Type {
	case TypeNull:
		return "null"
	case TypeInteger:
		return fmt.Sprintf("%d", v.Int)
	case TypeOctetString:
		return fmt.Sprintf("%q", v.Str)
	case TypeCounter:
		return fmt.Sprintf("Counter:%d", v.Int)
	case TypeGauge:
		return fmt.Sprintf("Gauge:%d", v.Int)
	case TypeTimeTicks:
		return fmt.Sprintf("TimeTicks:%d", v.Int)
	case TypeOpaqueFloat:
		return fmt.Sprintf("Float:%g", v.Float)
	case TypeOID:
		return "OID:" + v.OID.String()
	default:
		return fmt.Sprintf("unknown-type-%d", byte(v.Type))
	}
}

// Equal compares two values.
func (v Value) Equal(o Value) bool {
	if v.Type != o.Type {
		return false
	}
	switch v.Type {
	case TypeNull:
		return true
	case TypeOctetString:
		return v.Str == o.Str
	case TypeOpaqueFloat:
		return v.Float == o.Float
	case TypeOID:
		return v.OID.Equal(o.OID)
	default:
		return v.Int == o.Int
	}
}

// VarBind pairs an OID with a value.
type VarBind struct {
	OID   OID
	Value Value
}

// PDU is one protocol message.
type PDU struct {
	Community   string
	Type        PDUType
	RequestID   uint32
	ErrorStatus ErrorStatus
	ErrorIndex  uint32 // 1-based index of the offending varbind
	VarBinds    []VarBind
}

// Wire format constants.
const (
	wireVersion     = 1
	maxCommunityLen = 255
	maxVarBinds     = 1024
	maxOIDLen       = 128
	maxOctetString  = 64 << 10
)

var pduMagic = [2]byte{'S', 'M'}

// Codec errors.
var (
	ErrPDUTruncated = errors.New("snmp: truncated PDU")
	ErrPDUMagic     = errors.New("snmp: bad PDU magic")
	ErrPDUVersion   = errors.New("snmp: unsupported version")
	ErrPDUTooLarge  = errors.New("snmp: PDU field exceeds limit")
)

// MarshalPDU encodes the PDU into the compact binary wire format.
func MarshalPDU(p *PDU) ([]byte, error) {
	if len(p.Community) > maxCommunityLen {
		return nil, fmt.Errorf("%w: community %d bytes", ErrPDUTooLarge, len(p.Community))
	}
	if len(p.VarBinds) > maxVarBinds {
		return nil, fmt.Errorf("%w: %d varbinds", ErrPDUTooLarge, len(p.VarBinds))
	}
	buf := make([]byte, 0, 64+len(p.VarBinds)*16)
	buf = append(buf, pduMagic[0], pduMagic[1], wireVersion)
	buf = append(buf, byte(len(p.Community)))
	buf = append(buf, p.Community...)
	buf = append(buf, byte(p.Type))
	buf = binary.BigEndian.AppendUint32(buf, p.RequestID)
	buf = append(buf, byte(p.ErrorStatus))
	buf = binary.BigEndian.AppendUint32(buf, p.ErrorIndex)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(p.VarBinds)))
	for i := range p.VarBinds {
		vb := &p.VarBinds[i]
		var err error
		buf, err = appendVarBind(buf, vb)
		if err != nil {
			return nil, err
		}
	}
	return buf, nil
}

func appendOID(buf []byte, o OID) ([]byte, error) {
	if len(o) > maxOIDLen {
		return nil, fmt.Errorf("%w: OID with %d components", ErrPDUTooLarge, len(o))
	}
	buf = append(buf, byte(len(o)))
	for _, c := range o {
		buf = binary.BigEndian.AppendUint32(buf, c)
	}
	return buf, nil
}

func appendVarBind(buf []byte, vb *VarBind) ([]byte, error) {
	buf, err := appendOID(buf, vb.OID)
	if err != nil {
		return nil, err
	}
	v := vb.Value
	buf = append(buf, byte(v.Type))
	switch v.Type {
	case TypeNull:
	case TypeInteger, TypeCounter, TypeGauge, TypeTimeTicks:
		buf = binary.BigEndian.AppendUint64(buf, uint64(v.Int))
	case TypeOctetString:
		if len(v.Str) > maxOctetString {
			return nil, fmt.Errorf("%w: octet string %d bytes", ErrPDUTooLarge, len(v.Str))
		}
		buf = binary.BigEndian.AppendUint32(buf, uint32(len(v.Str)))
		buf = append(buf, v.Str...)
	case TypeOpaqueFloat:
		buf = binary.BigEndian.AppendUint64(buf, math.Float64bits(v.Float))
	case TypeOID:
		buf, err = appendOID(buf, v.OID)
		if err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("snmp: cannot encode value type %d", byte(v.Type))
	}
	return buf, nil
}

// reader is a bounds-checked cursor over the wire bytes.
type reader struct {
	data []byte
	off  int
}

func (r *reader) bytes(n int) ([]byte, error) {
	if n < 0 || r.off+n > len(r.data) {
		return nil, ErrPDUTruncated
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out, nil
}

func (r *reader) byte1() (byte, error) {
	b, err := r.bytes(1)
	if err != nil {
		return 0, err
	}
	return b[0], nil
}

func (r *reader) uint16() (uint16, error) {
	b, err := r.bytes(2)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint16(b), nil
}

func (r *reader) uint32() (uint32, error) {
	b, err := r.bytes(4)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(b), nil
}

func (r *reader) uint64() (uint64, error) {
	b, err := r.bytes(8)
	if err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint64(b), nil
}

func (r *reader) oid() (OID, error) {
	n, err := r.byte1()
	if err != nil {
		return nil, err
	}
	// Enforce the same cap as appendOID so every decodable OID is also
	// encodable (the length byte alone would admit up to 255).
	if int(n) > maxOIDLen {
		return nil, fmt.Errorf("%w: OID with %d components", ErrPDUTooLarge, n)
	}
	oid := make(OID, n)
	for i := range oid {
		c, err := r.uint32()
		if err != nil {
			return nil, err
		}
		oid[i] = c
	}
	return oid, nil
}

// UnmarshalPDU decodes a PDU from the wire format.
func UnmarshalPDU(data []byte) (*PDU, error) {
	r := &reader{data: data}
	magic, err := r.bytes(2)
	if err != nil {
		return nil, err
	}
	if magic[0] != pduMagic[0] || magic[1] != pduMagic[1] {
		return nil, ErrPDUMagic
	}
	ver, err := r.byte1()
	if err != nil {
		return nil, err
	}
	if ver != wireVersion {
		return nil, fmt.Errorf("%w: %d", ErrPDUVersion, ver)
	}
	commLen, err := r.byte1()
	if err != nil {
		return nil, err
	}
	comm, err := r.bytes(int(commLen))
	if err != nil {
		return nil, err
	}
	p := &PDU{Community: string(comm)}
	typ, err := r.byte1()
	if err != nil {
		return nil, err
	}
	p.Type = PDUType(typ)
	if p.RequestID, err = r.uint32(); err != nil {
		return nil, err
	}
	status, err := r.byte1()
	if err != nil {
		return nil, err
	}
	p.ErrorStatus = ErrorStatus(status)
	if p.ErrorIndex, err = r.uint32(); err != nil {
		return nil, err
	}
	count, err := r.uint16()
	if err != nil {
		return nil, err
	}
	if int(count) > maxVarBinds {
		return nil, fmt.Errorf("%w: %d varbinds", ErrPDUTooLarge, count)
	}
	p.VarBinds = make([]VarBind, 0, count)
	for i := 0; i < int(count); i++ {
		vb, err := readVarBind(r)
		if err != nil {
			return nil, err
		}
		p.VarBinds = append(p.VarBinds, vb)
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("snmp: %d trailing bytes", len(data)-r.off)
	}
	return p, nil
}

func readVarBind(r *reader) (VarBind, error) {
	var vb VarBind
	oid, err := r.oid()
	if err != nil {
		return vb, err
	}
	vb.OID = oid
	t, err := r.byte1()
	if err != nil {
		return vb, err
	}
	vb.Value.Type = ValueType(t)
	switch vb.Value.Type {
	case TypeNull:
	case TypeInteger, TypeCounter, TypeGauge, TypeTimeTicks:
		u, err := r.uint64()
		if err != nil {
			return vb, err
		}
		vb.Value.Int = int64(u)
	case TypeOctetString:
		n, err := r.uint32()
		if err != nil {
			return vb, err
		}
		if n > maxOctetString {
			return vb, fmt.Errorf("%w: octet string %d bytes", ErrPDUTooLarge, n)
		}
		b, err := r.bytes(int(n))
		if err != nil {
			return vb, err
		}
		vb.Value.Str = string(b)
	case TypeOpaqueFloat:
		u, err := r.uint64()
		if err != nil {
			return vb, err
		}
		vb.Value.Float = math.Float64frombits(u)
	case TypeOID:
		o, err := r.oid()
		if err != nil {
			return vb, err
		}
		vb.Value.OID = o
	default:
		return vb, fmt.Errorf("snmp: cannot decode value type %d", t)
	}
	return vb, nil
}
