package snmp

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func startServer(t *testing.T, community string, opts ...ServerOption) (*Server, *MIB) {
	t.Helper()
	mib := buildMIB(t)
	srv, err := NewServer("127.0.0.1:0", community, mib, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return srv, mib
}

func TestClientGet(t *testing.T) {
	srv, _ := startServer(t, "public")
	cli := NewClient("public", WithTimeout(time.Second))
	vbs, err := cli.Get(context.Background(), srv.Addr(),
		MustParseOID("1.3.6.1.2.1.1.1.0"),
		MustParseOID("1.3.6.1.2.1.25.1.2"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 2 || vbs[0].Value.Str != "test-device" || vbs[1].Value.Int != 20 {
		t.Fatalf("Get = %+v", vbs)
	}
}

func TestClientGetNoSuchName(t *testing.T) {
	srv, _ := startServer(t, "public")
	cli := NewClient("public", WithTimeout(time.Second))
	_, err := cli.Get(context.Background(), srv.Addr(), MustParseOID("9.9.9"))
	var se *ServerStatusError
	if !errors.As(err, &se) || se.Status != NoSuchName || se.Index != 1 {
		t.Fatalf("Get missing = %v", err)
	}
	if !errors.Is(err, ErrServerError) {
		t.Fatal("status error should match ErrServerError")
	}
}

func TestClientWrongCommunityTimesOut(t *testing.T) {
	srv, _ := startServer(t, "secret")
	cli := NewClient("wrong", WithTimeout(100*time.Millisecond), WithRetries(0))
	_, err := cli.Get(context.Background(), srv.Addr(), MustParseOID("1.3.6.1.2.1.1.1.0"))
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("wrong community = %v, want timeout (silent drop)", err)
	}
	_, denied := srv.Stats()
	if denied == 0 {
		t.Fatal("denied counter not bumped")
	}
}

func TestClientWalk(t *testing.T) {
	srv, _ := startServer(t, "public")
	cli := NewClient("public", WithTimeout(time.Second))
	vbs, err := cli.Walk(context.Background(), srv.Addr(), MustParseOID("1.3.6.1.2.1.25"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vbs) != 3 {
		t.Fatalf("Walk = %d objects, want 3", len(vbs))
	}
	for i, vb := range vbs {
		if want := int64((i + 1) * 10); vb.Value.Int != want {
			t.Fatalf("walk[%d] = %v, want %d", i, vb.Value, want)
		}
	}
	// Walking the entire tree terminates at end-of-MIB.
	all, err := cli.Walk(context.Background(), srv.Addr(), MustParseOID("1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 {
		t.Fatalf("full walk = %d objects, want 5", len(all))
	}
}

func TestClientSet(t *testing.T) {
	mib := NewMIB()
	var mu sync.Mutex
	cur := IntegerValue(1)
	mib.RegisterWritable(MustParseOID("1.1"),
		func() Value { mu.Lock(); defer mu.Unlock(); return cur },
		func(v Value) error { mu.Lock(); cur = v; mu.Unlock(); return nil })
	mib.RegisterScalar(MustParseOID("1.2"), IntegerValue(7))
	srv, err := NewServer("127.0.0.1:0", "public", mib)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cli := NewClient("public", WithTimeout(time.Second))
	if err := cli.Set(context.Background(), srv.Addr(), VarBind{OID: MustParseOID("1.1"), Value: IntegerValue(42)}); err != nil {
		t.Fatal(err)
	}
	vbs, err := cli.Get(context.Background(), srv.Addr(), MustParseOID("1.1"))
	if err != nil || vbs[0].Value.Int != 42 {
		t.Fatalf("after set: %+v, %v", vbs, err)
	}

	err = cli.Set(context.Background(), srv.Addr(), VarBind{OID: MustParseOID("1.2"), Value: IntegerValue(1)})
	var se *ServerStatusError
	if !errors.As(err, &se) || se.Status != ReadOnly {
		t.Fatalf("read-only set = %v", err)
	}
	err = cli.Set(context.Background(), srv.Addr(), VarBind{OID: MustParseOID("8.8"), Value: IntegerValue(1)})
	if !errors.As(err, &se) || se.Status != NoSuchName {
		t.Fatalf("missing set = %v", err)
	}
}

func TestClientTimeoutOnDeadAddress(t *testing.T) {
	cli := NewClient("public", WithTimeout(50*time.Millisecond), WithRetries(1))
	start := time.Now()
	_, err := cli.Get(context.Background(), "127.0.0.1:1", MustParseOID("1.1"))
	if err == nil {
		t.Fatal("dead address succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("timeout took too long")
	}
}

func TestClientContextCancel(t *testing.T) {
	srv, _ := startServer(t, "nope") // community mismatch => server stays silent
	cli := NewClient("public", WithTimeout(10*time.Second), WithRetries(0))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := cli.Get(ctx, srv.Addr(), MustParseOID("1.1"))
	if err == nil {
		t.Fatal("cancelled request succeeded")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("context deadline not honored")
	}
}

func TestConcurrentClients(t *testing.T) {
	srv, _ := startServer(t, "public")
	cli := NewClient("public", WithTimeout(2*time.Second))
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 4; j++ {
				if _, err := cli.Get(context.Background(), srv.Addr(), MustParseOID("1.3.6.1.2.1.1.1.0")); err != nil {
					errs <- err
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	served, _ := srv.Stats()
	if served < 32 {
		t.Fatalf("served = %d", served)
	}
}

func TestTrapDelivery(t *testing.T) {
	listener, err := NewTrapListener("127.0.0.1:0", 8)
	if err != nil {
		t.Fatal(err)
	}
	defer listener.Close()

	mib := buildMIB(t)
	srv, err := NewServer("127.0.0.1:0", "public", mib, WithTrapDestination(listener.Addr()))
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	want := []VarBind{{OID: MustParseOID("1.3.6.1.6.3.1.1.5.3"), Value: StringValue("linkDown")}}
	if err := srv.SendTrap(want); err != nil {
		t.Fatal(err)
	}
	select {
	case trap := <-listener.Traps():
		if trap.Type != Trap || len(trap.VarBinds) != 1 || trap.VarBinds[0].Value.Str != "linkDown" {
			t.Fatalf("trap = %+v", trap)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("trap never arrived")
	}
}

func TestTrapWithoutDestination(t *testing.T) {
	mib := buildMIB(t)
	srv, err := NewServer("127.0.0.1:0", "public", mib)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if err := srv.SendTrap(nil); err == nil {
		t.Fatal("trap without destination succeeded")
	}
}

func TestServerRejectsNilMIB(t *testing.T) {
	if _, err := NewServer("127.0.0.1:0", "public", nil); err == nil {
		t.Fatal("nil MIB accepted")
	}
}

func TestServerDoubleClose(t *testing.T) {
	srv, _ := startServer(t, "public")
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal("double close errored")
	}
}
