package snmp

import (
	"errors"
	"fmt"
	"sync"
	"testing"
)

func buildMIB(t *testing.T) *MIB {
	t.Helper()
	m := NewMIB()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(m.RegisterScalar(MustParseOID("1.3.6.1.2.1.1.1.0"), StringValue("test-device")))
	must(m.RegisterScalar(MustParseOID("1.3.6.1.2.1.1.5.0"), StringValue("host-1")))
	must(m.RegisterScalar(MustParseOID("1.3.6.1.2.1.25.1.1"), GaugeValue(10)))
	must(m.RegisterScalar(MustParseOID("1.3.6.1.2.1.25.1.2"), GaugeValue(20)))
	must(m.RegisterScalar(MustParseOID("1.3.6.1.2.1.25.1.3"), GaugeValue(30)))
	return m
}

func TestMIBGet(t *testing.T) {
	m := buildMIB(t)
	v, err := m.Get(MustParseOID("1.3.6.1.2.1.1.5.0"))
	if err != nil || v.Str != "host-1" {
		t.Fatalf("Get = %v, %v", v, err)
	}
	if _, err := m.Get(MustParseOID("9.9.9")); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("Get missing = %v", err)
	}
	if m.Len() != 5 {
		t.Fatalf("Len = %d", m.Len())
	}
}

func TestMIBDynamicValue(t *testing.T) {
	m := NewMIB()
	calls := 0
	m.Register(MustParseOID("1.1"), func() Value {
		calls++
		return IntegerValue(int64(calls))
	}, nil)
	v1, _ := m.Get(MustParseOID("1.1"))
	v2, _ := m.Get(MustParseOID("1.1"))
	if v1.Int != 1 || v2.Int != 2 {
		t.Fatalf("dynamic values = %d, %d", v1.Int, v2.Int)
	}
}

func TestMIBNextWalkOrder(t *testing.T) {
	m := buildMIB(t)
	// Walk the whole tree from the root.
	var seen []string
	cur := OID{1}
	for {
		next, _, err := m.Next(cur)
		if errors.Is(err, ErrEndOfMIB) {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		seen = append(seen, next.String())
		cur = next
	}
	want := []string{
		".1.3.6.1.2.1.1.1.0",
		".1.3.6.1.2.1.1.5.0",
		".1.3.6.1.2.1.25.1.1",
		".1.3.6.1.2.1.25.1.2",
		".1.3.6.1.2.1.25.1.3",
	}
	if len(seen) != len(want) {
		t.Fatalf("walked %v", seen)
	}
	for i := range want {
		if seen[i] != want[i] {
			t.Fatalf("walk[%d] = %s, want %s", i, seen[i], want[i])
		}
	}
}

func TestMIBNextStrictlyAfter(t *testing.T) {
	m := buildMIB(t)
	next, _, err := m.Next(MustParseOID("1.3.6.1.2.1.1.1.0"))
	if err != nil {
		t.Fatal(err)
	}
	if next.String() != ".1.3.6.1.2.1.1.5.0" {
		t.Fatalf("Next = %s", next)
	}
	// Next from past the last object is end-of-mib.
	if _, _, err := m.Next(MustParseOID("2")); !errors.Is(err, ErrEndOfMIB) {
		t.Fatalf("Next past end = %v", err)
	}
}

func TestMIBSet(t *testing.T) {
	m := NewMIB()
	stored := IntegerValue(1)
	var mu sync.Mutex
	m.RegisterWritable(MustParseOID("1.1"),
		func() Value { mu.Lock(); defer mu.Unlock(); return stored },
		func(v Value) error {
			if v.Type != TypeInteger {
				return fmt.Errorf("want integer")
			}
			mu.Lock()
			stored = v
			mu.Unlock()
			return nil
		})
	m.RegisterScalar(MustParseOID("1.2"), IntegerValue(9))

	if err := m.Set(MustParseOID("1.1"), IntegerValue(77)); err != nil {
		t.Fatal(err)
	}
	v, _ := m.Get(MustParseOID("1.1"))
	if v.Int != 77 {
		t.Fatalf("after set = %v", v)
	}
	if err := m.Set(MustParseOID("1.1"), StringValue("no")); err == nil {
		t.Fatal("bad value accepted")
	}
	if err := m.Set(MustParseOID("1.2"), IntegerValue(1)); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("read-only set = %v", err)
	}
	if err := m.Set(MustParseOID("9"), IntegerValue(1)); !errors.Is(err, ErrNoSuchObject) {
		t.Fatalf("missing set = %v", err)
	}
}

func TestMIBRegisterErrors(t *testing.T) {
	m := NewMIB()
	oid := MustParseOID("1.1")
	if err := m.Register(oid, nil, nil); err == nil {
		t.Error("nil get accepted")
	}
	if err := m.RegisterWritable(oid, func() Value { return NullValue() }, nil); err == nil {
		t.Error("nil set accepted for writable")
	}
	m.RegisterScalar(oid, IntegerValue(1))
	if err := m.RegisterScalar(oid, IntegerValue(2)); !errors.Is(err, ErrDupObject) {
		t.Errorf("duplicate register = %v", err)
	}
}

func TestMIBWalkSubtree(t *testing.T) {
	m := buildMIB(t)
	var got []string
	m.WalkSubtree(MustParseOID("1.3.6.1.2.1.25"), func(oid OID, v Value) bool {
		got = append(got, oid.String())
		return true
	})
	if len(got) != 3 {
		t.Fatalf("subtree walk = %v", got)
	}
	// Early stop.
	count := 0
	m.WalkSubtree(MustParseOID("1"), func(OID, Value) bool {
		count++
		return count < 2
	})
	if count != 2 {
		t.Fatalf("early stop walked %d", count)
	}
	// Empty subtree.
	m.WalkSubtree(MustParseOID("7"), func(OID, Value) bool {
		t.Fatal("walked nonexistent subtree")
		return false
	})
}

func TestMIBConcurrent(t *testing.T) {
	m := NewMIB()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				oid := OID{uint32(i), uint32(j)}
				m.RegisterScalar(oid, IntegerValue(int64(j)))
				m.Get(oid)
				m.Next(OID{uint32(i)})
				m.WalkSubtree(OID{uint32(i)}, func(OID, Value) bool { return true })
			}
		}(i)
	}
	wg.Wait()
	if m.Len() != 200 {
		t.Fatalf("Len = %d", m.Len())
	}
}
