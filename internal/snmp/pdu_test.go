package snmp

import (
	"errors"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func samplePDU() *PDU {
	return &PDU{
		Community: "public",
		Type:      GetRequest,
		RequestID: 42,
		VarBinds: []VarBind{
			{OID: MustParseOID("1.3.6.1.2.1.1.1.0"), Value: StringValue("router-1")},
			{OID: MustParseOID("1.3.6.1.2.1.25.3.3.1.2"), Value: FloatValue(73.25)},
			{OID: MustParseOID("1.3.6.1.2.1.2.2.1.10.1"), Value: CounterValue(998877)},
			{OID: MustParseOID("1.3.6.1.4.1.9"), Value: NullValue()},
			{OID: MustParseOID("1.3"), Value: IntegerValue(-5)},
			{OID: MustParseOID("1.4"), Value: GaugeValue(100)},
			{OID: MustParseOID("1.5"), Value: TimeTicksValue(12345)},
			{OID: MustParseOID("1.6"), Value: OIDValue(MustParseOID("1.3.6.1"))},
		},
	}
}

func TestPDURoundtrip(t *testing.T) {
	p := samplePDU()
	raw, err := MarshalPDU(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(p, got) {
		t.Fatalf("roundtrip mismatch:\n got %+v\nwant %+v", got, p)
	}
}

func TestPDURoundtripEmptyVarbinds(t *testing.T) {
	p := &PDU{Community: "c", Type: GetResponse, RequestID: 1}
	raw, err := MarshalPDU(p)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalPDU(raw)
	if err != nil {
		t.Fatal(err)
	}
	if got.Type != GetResponse || len(got.VarBinds) != 0 {
		t.Fatalf("got %+v", got)
	}
}

func TestPDULimits(t *testing.T) {
	if _, err := MarshalPDU(&PDU{Community: strings.Repeat("x", 300)}); !errors.Is(err, ErrPDUTooLarge) {
		t.Error("oversized community accepted")
	}
	big := &PDU{Community: "c", VarBinds: make([]VarBind, maxVarBinds+1)}
	if _, err := MarshalPDU(big); !errors.Is(err, ErrPDUTooLarge) {
		t.Error("too many varbinds accepted")
	}
	longOID := make(OID, maxOIDLen+1)
	if _, err := MarshalPDU(&PDU{VarBinds: []VarBind{{OID: longOID}}}); !errors.Is(err, ErrPDUTooLarge) {
		t.Error("oversized OID accepted")
	}
	bigStr := &PDU{VarBinds: []VarBind{{OID: OID{1}, Value: StringValue(strings.Repeat("y", maxOctetString+1))}}}
	if _, err := MarshalPDU(bigStr); !errors.Is(err, ErrPDUTooLarge) {
		t.Error("oversized octet string accepted")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	good, _ := MarshalPDU(samplePDU())
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte{'X', 'Y'}, good[2:]...)},
		{"bad version", append([]byte{'S', 'M', 99}, good[3:]...)},
		{"truncated mid-varbind", good[:len(good)-4]},
		{"trailing garbage", append(append([]byte{}, good...), 1, 2, 3)},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := UnmarshalPDU(tc.data); err == nil {
				t.Fatal("corrupt PDU accepted")
			}
		})
	}
}

func TestUnmarshalEveryTruncation(t *testing.T) {
	good, _ := MarshalPDU(samplePDU())
	for i := 0; i < len(good); i++ {
		if _, err := UnmarshalPDU(good[:i]); err == nil {
			t.Fatalf("truncation at %d accepted", i)
		}
	}
}

func TestValueAsFloat(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
		ok   bool
	}{
		{IntegerValue(7), 7, true},
		{CounterValue(9), 9, true},
		{GaugeValue(3), 3, true},
		{TimeTicksValue(100), 100, true},
		{FloatValue(2.5), 2.5, true},
		{StringValue("x"), 0, false},
		{NullValue(), 0, false},
		{OIDValue(OID{1}), 0, false},
	}
	for _, tc := range cases {
		got, ok := tc.v.AsFloat()
		if got != tc.want || ok != tc.ok {
			t.Errorf("AsFloat(%v) = %v,%v", tc.v, got, ok)
		}
	}
}

func TestValueString(t *testing.T) {
	cases := map[string]Value{
		"null":        NullValue(),
		"-3":          IntegerValue(-3),
		`"hi"`:        StringValue("hi"),
		"Counter:4":   CounterValue(4),
		"Gauge:5":     GaugeValue(5),
		"TimeTicks:6": TimeTicksValue(6),
		"Float:1.5":   FloatValue(1.5),
		"OID:.1.3":    OIDValue(MustParseOID("1.3")),
	}
	for want, v := range cases {
		if got := v.String(); got != want {
			t.Errorf("String(%v) = %q, want %q", v.Type, got, want)
		}
	}
}

func TestValueEqual(t *testing.T) {
	if !FloatValue(1.5).Equal(FloatValue(1.5)) || FloatValue(1.5).Equal(FloatValue(2)) {
		t.Error("float equality wrong")
	}
	if IntegerValue(1).Equal(GaugeValue(1)) {
		t.Error("cross-type equality")
	}
	if !NullValue().Equal(NullValue()) {
		t.Error("null equality")
	}
	if !OIDValue(OID{1, 2}).Equal(OIDValue(OID{1, 2})) || OIDValue(OID{1}).Equal(OIDValue(OID{2})) {
		t.Error("oid equality wrong")
	}
	if !StringValue("a").Equal(StringValue("a")) || StringValue("a").Equal(StringValue("b")) {
		t.Error("string equality wrong")
	}
}

func TestPDUTypeAndStatusStrings(t *testing.T) {
	if GetRequest.String() != "get-request" || Trap.String() != "trap" {
		t.Error("PDU type names wrong")
	}
	if !strings.Contains(PDUType(99).String(), "99") {
		t.Error("unknown PDU type string")
	}
	if NoError.String() != "noError" || ReadOnly.String() != "readOnly" {
		t.Error("status names wrong")
	}
	if !strings.Contains(ErrorStatus(42).String(), "42") {
		t.Error("unknown status string")
	}
}

func randValue(r *rand.Rand) Value {
	switch r.Intn(7) {
	case 0:
		return NullValue()
	case 1:
		return IntegerValue(r.Int63() - r.Int63())
	case 2:
		b := make([]byte, r.Intn(64))
		for i := range b {
			b[i] = byte(r.Intn(256))
		}
		return StringValue(string(b))
	case 3:
		return CounterValue(r.Int63())
	case 4:
		return GaugeValue(r.Int63())
	case 5:
		return FloatValue(r.NormFloat64() * 1000)
	default:
		return OIDValue(randOID(r))
	}
}

func TestPDURoundtripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		p := &PDU{
			Community:   "community",
			Type:        PDUType(1 + r.Intn(5)),
			RequestID:   r.Uint32(),
			ErrorStatus: ErrorStatus(r.Intn(6)),
			ErrorIndex:  uint32(r.Intn(10)),
		}
		for i := 0; i < r.Intn(8); i++ {
			p.VarBinds = append(p.VarBinds, VarBind{OID: randOID(r), Value: randValue(r)})
		}
		raw, err := MarshalPDU(p)
		if err != nil {
			return false
		}
		got, err := UnmarshalPDU(raw)
		if err != nil {
			return false
		}
		if len(p.VarBinds) == 0 {
			p.VarBinds = nil
			got.VarBinds = nil
		}
		return reflect.DeepEqual(p, got)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
