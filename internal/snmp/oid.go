// Package snmp implements the compact management protocol the collector
// grid uses to pull data from managed devices — the role SNMP plays in
// the paper ("a collecting agent can have an SNMP interface", §3.1).
//
// The protocol is a faithful functional subset of SNMP: object
// identifiers arranged in a MIB tree, GET / GETNEXT / SET / TRAP PDUs
// with community-based access control, and an agent/manager split over
// UDP. The wire encoding is a compact binary format rather than BER; the
// PDU structure and semantics match SNMPv2c.
package snmp

import (
	"fmt"
	"strconv"
	"strings"
)

// OID is an object identifier: a path in the MIB tree.
type OID []uint32

// ParseOID parses dotted notation such as ".1.3.6.1.2.1.25.3.3.1.2" or
// "1.3.6.1". An empty or malformed string is an error.
func ParseOID(s string) (OID, error) {
	s = strings.TrimPrefix(s, ".")
	if s == "" {
		return nil, fmt.Errorf("snmp: empty OID")
	}
	parts := strings.Split(s, ".")
	oid := make(OID, len(parts))
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return nil, fmt.Errorf("snmp: bad OID component %q: %w", p, err)
		}
		oid[i] = uint32(v)
	}
	return oid, nil
}

// MustParseOID is ParseOID that panics; for static tables in code.
func MustParseOID(s string) OID {
	oid, err := ParseOID(s)
	if err != nil {
		panic(err)
	}
	return oid
}

// String renders the OID in dotted notation with a leading dot.
func (o OID) String() string {
	if len(o) == 0 {
		return "."
	}
	var b strings.Builder
	for _, c := range o {
		b.WriteByte('.')
		b.WriteString(strconv.FormatUint(uint64(c), 10))
	}
	return b.String()
}

// Clone returns a copy of the OID.
func (o OID) Clone() OID {
	return append(OID(nil), o...)
}

// Append returns a new OID with extra components appended.
func (o OID) Append(components ...uint32) OID {
	out := make(OID, 0, len(o)+len(components))
	out = append(out, o...)
	return append(out, components...)
}

// Compare orders OIDs lexicographically (the MIB tree walk order):
// -1 if o < other, 0 if equal, +1 if o > other.
func (o OID) Compare(other OID) int {
	n := len(o)
	if len(other) < n {
		n = len(other)
	}
	for i := 0; i < n; i++ {
		switch {
		case o[i] < other[i]:
			return -1
		case o[i] > other[i]:
			return 1
		}
	}
	switch {
	case len(o) < len(other):
		return -1
	case len(o) > len(other):
		return 1
	}
	return 0
}

// Equal reports whether two OIDs are identical.
func (o OID) Equal(other OID) bool { return o.Compare(other) == 0 }

// HasPrefix reports whether o starts with prefix (subtree membership).
func (o OID) HasPrefix(prefix OID) bool {
	if len(prefix) > len(o) {
		return false
	}
	for i, c := range prefix {
		if o[i] != c {
			return false
		}
	}
	return true
}
