package snmp

import (
	"errors"
	"fmt"
	"net"
	"sync"
)

// Server is the device-side protocol agent: it answers GET / GETNEXT /
// SET requests against a MIB over UDP and can emit traps to a configured
// sink. One server instance fronts one managed device.
type Server struct {
	mib       *MIB
	community string

	mu       sync.Mutex
	conn     *net.UDPConn
	trapDst  *net.UDPAddr
	closed   bool
	wg       sync.WaitGroup
	requests uint64
	denied   uint64
}

// ServerOption configures a Server.
type ServerOption func(*Server)

// WithTrapDestination points traps at a manager address ("host:port").
func WithTrapDestination(addr string) ServerOption {
	return func(s *Server) {
		if dst, err := net.ResolveUDPAddr("udp", addr); err == nil {
			s.trapDst = dst
		}
	}
}

// NewServer starts a protocol agent on addr ("host:port", port 0 for
// ephemeral) serving the MIB. Requests must carry the given community.
func NewServer(addr, community string, mib *MIB, opts ...ServerOption) (*Server, error) {
	if mib == nil {
		return nil, errors.New("snmp: nil MIB")
	}
	udpAddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("snmp: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("snmp: listen %s: %w", addr, err)
	}
	s := &Server{mib: mib, community: community, conn: conn}
	for _, opt := range opts {
		opt(s)
	}
	s.wg.Add(1)
	go s.serve()
	return s, nil
}

// Addr returns the server's UDP address.
func (s *Server) Addr() string { return s.conn.LocalAddr().String() }

// Stats returns (requests served, requests denied by community check).
func (s *Server) Stats() (served, denied uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.requests, s.denied
}

// Close stops the server.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	err := s.conn.Close()
	s.wg.Wait()
	return err
}

func (s *Server) serve() {
	defer s.wg.Done()
	buf := make([]byte, 64<<10)
	for {
		n, peer, err := s.conn.ReadFromUDP(buf)
		if err != nil {
			return // closed
		}
		req, err := UnmarshalPDU(buf[:n])
		if err != nil {
			continue // malformed datagram; ignore like real agents do
		}
		resp := s.handle(req)
		if resp == nil {
			continue
		}
		out, err := MarshalPDU(resp)
		if err != nil {
			continue
		}
		s.conn.WriteToUDP(out, peer)
	}
}

// handle computes the response for one request PDU. Exposed indirectly
// through the UDP loop; unit tests call it via the client.
func (s *Server) handle(req *PDU) *PDU {
	s.mu.Lock()
	s.requests++
	s.mu.Unlock()
	resp := &PDU{
		Community: req.Community,
		Type:      GetResponse,
		RequestID: req.RequestID,
	}
	if req.Community != s.community {
		s.mu.Lock()
		s.denied++
		s.mu.Unlock()
		// Real v2c agents silently drop bad-community requests.
		return nil
	}
	switch req.Type {
	case GetRequest:
		for i, vb := range req.VarBinds {
			v, err := s.mib.Get(vb.OID)
			if err != nil {
				return errorResponse(resp, req, NoSuchName, i)
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: vb.OID.Clone(), Value: v})
		}
	case GetNextRequest:
		for i, vb := range req.VarBinds {
			next, v, err := s.mib.Next(vb.OID)
			if err != nil {
				return errorResponse(resp, req, NoSuchName, i)
			}
			resp.VarBinds = append(resp.VarBinds, VarBind{OID: next, Value: v})
		}
	case SetRequest:
		// Validate all writes before applying any (SNMP "as if
		// simultaneous" semantics, approximated two-phase).
		for i, vb := range req.VarBinds {
			if err := s.mib.Set(vb.OID, vb.Value); err != nil {
				status := BadValue
				if errors.Is(err, ErrNoSuchObject) {
					status = NoSuchName
				} else if errors.Is(err, ErrReadOnly) {
					status = ReadOnly
				}
				return errorResponse(resp, req, status, i)
			}
		}
		resp.VarBinds = append(resp.VarBinds, req.VarBinds...)
	default:
		return errorResponse(resp, req, GenErr, 0)
	}
	return resp
}

func errorResponse(resp, req *PDU, status ErrorStatus, idx int) *PDU {
	resp.ErrorStatus = status
	resp.ErrorIndex = uint32(idx + 1)
	resp.VarBinds = append([]VarBind(nil), req.VarBinds...)
	return resp
}

// SendTrap emits an unsolicited trap PDU to the configured destination.
// Devices use it to signal faults (link down, threshold crossed).
func (s *Server) SendTrap(varbinds []VarBind) error {
	s.mu.Lock()
	dst := s.trapDst
	closed := s.closed
	s.mu.Unlock()
	if closed {
		return errors.New("snmp: server closed")
	}
	if dst == nil {
		return errors.New("snmp: no trap destination configured")
	}
	pdu := &PDU{Community: s.community, Type: Trap, VarBinds: varbinds}
	out, err := MarshalPDU(pdu)
	if err != nil {
		return err
	}
	_, err = s.conn.WriteToUDP(out, dst)
	return err
}
