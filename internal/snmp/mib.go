package snmp

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// GetFunc produces the current value of a managed object at read time,
// letting devices expose live metrics.
type GetFunc func() Value

// SetFunc applies a write to a managed object. Returning an error maps to
// a badValue response.
type SetFunc func(Value) error

// mibEntry is one managed object.
type mibEntry struct {
	oid OID
	get GetFunc
	set SetFunc // nil = read-only
}

// MIB is a device's tree of managed objects. It supports exact lookup
// (GET), lexicographic successor lookup (GETNEXT / walks) and guarded
// writes (SET). Safe for concurrent use.
type MIB struct {
	mu      sync.RWMutex
	entries []mibEntry // sorted by OID
}

// MIB errors.
var (
	ErrNoSuchObject = errors.New("snmp: no such object")
	ErrEndOfMIB     = errors.New("snmp: end of MIB")
	ErrReadOnly     = errors.New("snmp: read-only object")
	ErrDupObject    = errors.New("snmp: object already registered")
)

// NewMIB returns an empty MIB.
func NewMIB() *MIB { return &MIB{} }

// Register adds a dynamic managed object. get must be non-nil; set may be
// nil for read-only objects.
func (m *MIB) Register(oid OID, get GetFunc, set SetFunc) error {
	if get == nil {
		return fmt.Errorf("snmp: nil GetFunc for %s", oid)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	i := m.search(oid)
	if i < len(m.entries) && m.entries[i].oid.Equal(oid) {
		return fmt.Errorf("%w: %s", ErrDupObject, oid)
	}
	m.entries = append(m.entries, mibEntry{})
	copy(m.entries[i+1:], m.entries[i:])
	m.entries[i] = mibEntry{oid: oid.Clone(), get: get, set: set}
	return nil
}

// RegisterScalar adds a read-only object with a constant value.
func (m *MIB) RegisterScalar(oid OID, v Value) error {
	return m.Register(oid, func() Value { return v }, nil)
}

// RegisterWritable adds an object backed by get/set callbacks.
func (m *MIB) RegisterWritable(oid OID, get GetFunc, set SetFunc) error {
	if set == nil {
		return fmt.Errorf("snmp: nil SetFunc for writable %s", oid)
	}
	return m.Register(oid, get, set)
}

// search returns the insertion index for oid. Caller holds a lock.
func (m *MIB) search(oid OID) int {
	return sort.Search(len(m.entries), func(i int) bool {
		return m.entries[i].oid.Compare(oid) >= 0
	})
}

// Get returns the current value of the exact OID.
func (m *MIB) Get(oid OID) (Value, error) {
	m.mu.RLock()
	i := m.search(oid)
	var get GetFunc
	if i < len(m.entries) && m.entries[i].oid.Equal(oid) {
		get = m.entries[i].get
	}
	m.mu.RUnlock()
	if get == nil {
		return Value{}, fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	}
	return get(), nil
}

// Next returns the first registered OID strictly after oid together with
// its value — the GETNEXT operation that makes tree walks possible.
func (m *MIB) Next(oid OID) (OID, Value, error) {
	m.mu.RLock()
	i := m.search(oid)
	// Skip the exact match: GETNEXT is strictly greater.
	if i < len(m.entries) && m.entries[i].oid.Equal(oid) {
		i++
	}
	if i >= len(m.entries) {
		m.mu.RUnlock()
		return nil, Value{}, ErrEndOfMIB
	}
	next := m.entries[i].oid.Clone()
	get := m.entries[i].get
	m.mu.RUnlock()
	return next, get(), nil
}

// Set writes a value to the OID.
func (m *MIB) Set(oid OID, v Value) error {
	m.mu.RLock()
	i := m.search(oid)
	var entry *mibEntry
	if i < len(m.entries) && m.entries[i].oid.Equal(oid) {
		entry = &m.entries[i]
	}
	var set SetFunc
	if entry != nil {
		set = entry.set
	}
	m.mu.RUnlock()
	if entry == nil {
		return fmt.Errorf("%w: %s", ErrNoSuchObject, oid)
	}
	if set == nil {
		return fmt.Errorf("%w: %s", ErrReadOnly, oid)
	}
	return set(v)
}

// Len returns the number of registered objects.
func (m *MIB) Len() int {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return len(m.entries)
}

// WalkSubtree calls f with every object under prefix, in tree order.
// f returning false stops the walk.
func (m *MIB) WalkSubtree(prefix OID, f func(oid OID, v Value) bool) {
	m.mu.RLock()
	start := m.search(prefix)
	type pair struct {
		oid OID
		get GetFunc
	}
	var pairs []pair
	for i := start; i < len(m.entries); i++ {
		if !m.entries[i].oid.HasPrefix(prefix) {
			break
		}
		pairs = append(pairs, pair{m.entries[i].oid.Clone(), m.entries[i].get})
	}
	m.mu.RUnlock()
	for _, p := range pairs {
		if !f(p.oid, p.get()) {
			return
		}
	}
}
