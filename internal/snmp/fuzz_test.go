package snmp

import (
	"bytes"
	"testing"
)

// FuzzDecodePDU feeds arbitrary bytes to the PDU decoder. Beyond
// not panicking, it checks the codec is canonical: any input the
// decoder accepts must re-marshal successfully and byte-identically
// (the wire format carries no redundancy, so decode followed by encode
// is the identity on valid inputs).
func FuzzDecodePDU(f *testing.F) {
	seedPDUs := []*PDU{
		{Community: "public", Type: GetRequest, RequestID: 1, VarBinds: []VarBind{
			{OID: MustParseOID("1.3.6.1.2.1.1.5.0"), Value: NullValue()},
		}},
		{Community: "public", Type: GetResponse, RequestID: 2, VarBinds: []VarBind{
			{OID: MustParseOID("1.3.6.1.2.1.1.5.0"), Value: StringValue("host-01")},
			{OID: MustParseOID("1.3.6.1.4.1.5000.2.1"), Value: FloatValue(99.5)},
			{OID: MustParseOID("1.3.6.1.4.1.5000.3"), Value: IntegerValue(7)},
			{OID: MustParseOID("1.3.6.1.4.1.5000.4"), Value: CounterValue(1 << 40)},
			{OID: MustParseOID("1.3.6.1.4.1.5000.5"), Value: GaugeValue(42)},
			{OID: MustParseOID("1.3.6.1.4.1.5000.6"), Value: TimeTicksValue(100)},
		}},
		{Community: "c", Type: Trap, RequestID: 3, ErrorStatus: GenErr, ErrorIndex: 1,
			VarBinds: []VarBind{
				{OID: MustParseOID("1.3"), Value: OIDValue(MustParseOID("1.3.6.1"))},
			}},
		{Community: "", Type: GetNextRequest, RequestID: 4},
	}
	for _, p := range seedPDUs {
		data, err := MarshalPDU(p)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte{})
	f.Add([]byte{'S', 'M', 1})
	f.Add([]byte("SMx garbage that is not a PDU"))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := UnmarshalPDU(data)
		if err != nil {
			return
		}
		out, err := MarshalPDU(p)
		if err != nil {
			t.Fatalf("decoded PDU does not re-marshal: %v", err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("re-marshal not canonical:\n in  %x\n out %x", data, out)
		}
		if _, err := UnmarshalPDU(out); err != nil {
			t.Fatalf("re-marshaled PDU does not decode: %v", err)
		}
	})
}
