package rules

import "testing"

// FuzzParse feeds arbitrary source to the rule-language parser. Beyond
// not panicking, it checks printing is a fixed point: any rule the
// parser accepts must render (Rule.String) back into source the parser
// accepts, producing a rule that renders identically.
func FuzzParse(f *testing.F) {
	seeds := []string{
		`rule "hot-cpu" level 1 category cpu severity critical {
    when latest(cpu.util) > 95
    then alert "CPU pegged on {device}"
}`,
		`rule "low-disk" priority 3 level 2 category disk {
    when avg(disk.free, 5) < 10 and not (fact(maintenance))
    then derive disk_pressure
}`,
		`rule "flapping" level 2 {
    when rate(if.errors, 10) > 0.5 or countabove(cpu.util, 90) >= 3
    then alert "link flapping"
}`,
		`rule "fleet" level 3 {
    when fleetavg(mem.used) > 80 and trend(mem.used, 5) > 0
    then alert "grid-wide memory pressure"
}`,
		`rule "esc" level 1 {
    when min(a.b, 2) <= 1e6
    then alert "quote \" backslash \\ newline \n done"
}`,
		`rule "x" level 1 { when latest(m) > 1 then alert "y" }
rule "z" level 2 { when latest(m) < 1 then derive low }`,
		"",
		"rule",
		"rule \"a\" level 0 { when latest(m) > 1e999 then alert \"inf\" }",
		"// comment only",
	}
	for _, s := range seeds {
		f.Add(s)
	}

	f.Fuzz(func(t *testing.T, src string) {
		parsed, err := Parse(src)
		if err != nil {
			return
		}
		for _, r := range parsed {
			printed := r.String()
			again, err := ParseOne(printed)
			if err != nil {
				t.Fatalf("printed rule does not re-parse: %v\nsource:\n%s", err, printed)
			}
			if got := again.String(); got != printed {
				t.Fatalf("print/parse not a fixed point:\n first %s\n again %s", printed, got)
			}
		}
	})
}
