package rules

import (
	"errors"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

func mustAdd(t *testing.T, rb *RuleBase, src string) {
	t.Helper()
	if _, err := rb.AddSource(src); err != nil {
		t.Fatal(err)
	}
}

func fill(t *testing.T, st *store.Store, device, metric string, vals ...float64) {
	t.Helper()
	for i, v := range vals {
		err := st.Append(obs.Record{
			Site: "site1", Device: device, Metric: metric,
			Value: v, Step: i + 1, Time: time.Unix(int64(i), 0),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestRuleBaseCRUD(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `rule "a" category cpu { when latest(x) > 1 then alert "a" }`)
	mustAdd(t, rb, `rule "b" level 2 category disk { when latest(y) > 1 then alert "b" }`)

	if rb.Len() != 2 {
		t.Fatalf("Len = %d", rb.Len())
	}
	if _, err := rb.AddSource(`rule "a" { when latest(x) > 1 then alert "dup" }`); !errors.Is(err, ErrDupRule) {
		t.Fatalf("dup add = %v", err)
	}
	if names := rb.Names(); len(names) != 2 || names[0] != "a" {
		t.Fatalf("Names = %v", names)
	}
	if cats := rb.Categories(); len(cats) != 2 || cats[0] != "cpu" || cats[1] != "disk" {
		t.Fatalf("Categories = %v", cats)
	}
	if r, ok := rb.Get("a"); !ok || r.Name != "a" {
		t.Fatal("Get failed")
	}
	if err := rb.Remove("a"); err != nil {
		t.Fatal(err)
	}
	if err := rb.Remove("a"); !errors.Is(err, ErrNoRule) {
		t.Fatalf("double remove = %v", err)
	}
	if err := rb.Add(nil); err == nil {
		t.Fatal("nil rule accepted")
	}
}

func TestAddSourceRollbackOnDup(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `rule "x" { when latest(a) > 1 then alert "x" }`)
	_, err := rb.AddSource(`
rule "fresh" { when latest(a) > 1 then alert "f" }
rule "x" { when latest(a) > 1 then alert "dup" }`)
	if err == nil {
		t.Fatal("dup source accepted")
	}
	if rb.Len() != 1 {
		t.Fatalf("rollback failed, Len = %d, names %v", rb.Len(), rb.Names())
	}
}

func TestForLevelOrdering(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "low" priority 1 { when latest(x) > 1 then alert "l" }
rule "high" priority 9 { when latest(x) > 1 then alert "h" }
rule "mid-b" priority 5 { when latest(x) > 1 then alert "m" }
rule "mid-a" priority 5 { when latest(x) > 1 then alert "m" }
rule "other-level" level 2 priority 99 { when latest(x) > 1 then alert "o" }`)
	got := rb.ForLevel(1)
	if len(got) != 4 {
		t.Fatalf("ForLevel(1) = %d rules", len(got))
	}
	wantOrder := []string{"high", "mid-a", "mid-b", "low"}
	for i, r := range got {
		if r.Name != wantOrder[i] {
			t.Fatalf("order[%d] = %s, want %s", i, r.Name, wantOrder[i])
		}
	}
	if len(rb.ForLevel(3)) != 0 {
		t.Fatal("phantom level-3 rules")
	}
}

func TestEvaluateLevel1(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "hot" severity critical { when latest(cpu.util) > 90 then alert "cpu={device}" }
rule "cold" { when latest(cpu.util) < 5 then alert "idle" }`)

	env := &MapEnv{Values: map[string]float64{"cpu.util": 97}}
	alerts, _ := Evaluate(rb, 1, env, Scope{Site: "site1", Device: "web-1", Step: 7})
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v", alerts)
	}
	a := alerts[0]
	if a.Rule != "hot" || a.Severity != SeverityCritical || a.Message != "cpu=web-1" ||
		a.Site != "site1" || a.Device != "web-1" || a.Step != 7 || a.Level != 1 {
		t.Fatalf("alert = %+v", a)
	}
	if s := a.String(); !strings.Contains(s, "site1/web-1") || !strings.Contains(s, "critical") {
		t.Fatalf("alert String = %q", s)
	}
}

func TestEvaluateMissingMetricIsFalse(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `rule "r" { when latest(nope) > 0 or latest(nope) <= 0 then alert "m" }`)
	alerts, _ := Evaluate(rb, 1, &MapEnv{Values: map[string]float64{}}, Scope{})
	if len(alerts) != 0 {
		t.Fatal("missing metric fired a rule")
	}
}

func TestForwardChaining(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "derive-hot" priority 10 { when latest(cpu.util) > 90 then derive hot }
rule "derive-strained" priority 5 { when fact(hot) and latest(mem.free) < 200 then derive strained }
rule "alarm" priority 1 { when fact(strained) then alert "cascading overload" }`)

	env := &MapEnv{Values: map[string]float64{"cpu.util": 95, "mem.free": 128}}
	alerts, facts := Evaluate(rb, 1, env, Scope{Site: "s", Device: "d"})
	if len(alerts) != 1 || alerts[0].Rule != "alarm" {
		t.Fatalf("alerts = %+v", alerts)
	}
	if len(facts) != 2 || facts[0] != "hot" || facts[1] != "strained" {
		t.Fatalf("facts = %v", facts)
	}
}

func TestForwardChainingNeedsMultipleRounds(t *testing.T) {
	// The chain is ordered against priority so each round derives only
	// one new fact; evaluation must iterate.
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "z3" priority 9 { when fact(f2) then alert "deep" }
rule "z2" priority 8 { when fact(f1) then derive f2 }
rule "z1" priority 7 { when latest(x) > 0 then derive f1 }`)
	env := &MapEnv{Values: map[string]float64{"x": 1}}
	alerts, facts := Evaluate(rb, 1, env, Scope{})
	if len(alerts) != 1 {
		t.Fatalf("alerts = %+v (facts %v)", alerts, facts)
	}
}

func TestRuleFiresOnce(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "ping" { when latest(x) > 0 then alert "ping" }
rule "chain" { when latest(x) > 0 then derive f }`)
	env := &MapEnv{Values: map[string]float64{"x": 1}}
	alerts, _ := Evaluate(rb, 1, env, Scope{})
	if len(alerts) != 1 {
		t.Fatalf("rule fired %d times", len(alerts))
	}
}

func TestEvaluateLevel2WithHistory(t *testing.T) {
	st := store.New(64)
	fill(t, st, "db-1", "cpu.util", 91, 95, 93, 97, 92, 96, 94, 98, 95, 99)
	fill(t, st, "db-1", "disk.free", 100, 96, 92, 88, 84, 80, 76, 72, 68, 64)

	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "sustained-cpu" level 2 severity critical {
    when avg(cpu.util, 10) > 90 and min(cpu.util, 10) > 85
    then alert "sustained load on {device}"
}
rule "disk-filling" level 2 {
    when trend(disk.free, 10) < -3 and latest(disk.free) < 70
    then alert "disk exhaustion predicted on {device}"
}`)

	env := &DeviceEnv{Store: st, Site: "site1", Device: "db-1"}
	alerts, _ := Evaluate(rb, 2, env, Scope{Site: "site1", Device: "db-1", Step: 10})
	if len(alerts) != 2 {
		t.Fatalf("alerts = %+v", alerts)
	}
}

func TestEvaluateLevel3CrossDevice(t *testing.T) {
	st := store.New(64)
	for i, cpu := range []float64{95, 93, 97, 20, 15} {
		dev := string(rune('a' + i))
		fill(t, st, dev, "cpu.util", cpu)
	}
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "site-hot" level 3 severity critical {
    when count_above(cpu.util, 90) >= 3 and fleet_avg(cpu.util) > 50
    then alert "site {site} overloaded"
}
rule "site-dead" level 3 {
    when count_below(cpu.util, 1) >= 2
    then alert "mass outage"
}`)
	env := &SiteEnv{Store: st, Site: "site1"}
	alerts, _ := Evaluate(rb, 3, env, Scope{Site: "site1", Step: 1})
	if len(alerts) != 1 || alerts[0].Rule != "site-hot" {
		t.Fatalf("alerts = %+v", alerts)
	}
	if alerts[0].Message != "site site1 overloaded" || alerts[0].Device != "" {
		t.Fatalf("alert = %+v", alerts[0])
	}
}

func TestSiteEnvSemantics(t *testing.T) {
	st := store.New(16)
	fill(t, st, "a", "cpu.util", 10)
	fill(t, st, "b", "cpu.util", 30)
	// A different site's device must not leak into site1 scope.
	st.Append(obs.Record{Site: "site2", Device: "z", Metric: "cpu.util", Value: 1000, Step: 1})

	env := &SiteEnv{Store: st, Site: "site1"}
	vals := env.FleetLatest("cpu.util")
	if len(vals) != 2 {
		t.Fatalf("FleetLatest = %v", vals)
	}
	avg, ok := env.Latest("cpu.util")
	if !ok || avg != 20 {
		t.Fatalf("Latest = %v, %v", avg, ok)
	}
	if _, ok := env.Latest("ghost"); ok {
		t.Fatal("phantom fleet metric")
	}
	if env.Window("cpu.util", 5) != nil {
		t.Fatal("site window should be nil")
	}
	if env.Fact("x") {
		t.Fatal("site env has facts")
	}
}

func TestDeviceEnvSemantics(t *testing.T) {
	st := store.New(16)
	fill(t, st, "a", "cpu.util", 10, 20, 30)
	env := &DeviceEnv{Store: st, Site: "site1", Device: "a"}
	if v, ok := env.Latest("cpu.util"); !ok || v != 30 {
		t.Fatalf("Latest = %v", v)
	}
	if w := env.Window("cpu.util", 2); len(w) != 2 || w[1].Value != 30 {
		t.Fatalf("Window = %+v", w)
	}
	fleet := env.FleetLatest("cpu.util")
	if len(fleet) != 1 || fleet[0] != 30 {
		t.Fatalf("FleetLatest = %v", fleet)
	}
	if env.FleetLatest("ghost") != nil {
		t.Fatal("phantom fleet values")
	}
}

func TestMapEnvFleet(t *testing.T) {
	m := &MapEnv{Values: map[string]float64{"x": 5}}
	if f := m.FleetLatest("x"); len(f) != 1 || f[0] != 5 {
		t.Fatalf("FleetLatest = %v", f)
	}
	if m.FleetLatest("y") != nil {
		t.Fatal("phantom fleet")
	}
}

func TestWindowedFunctionDefaults(t *testing.T) {
	st := store.New(64)
	vals := make([]float64, 20)
	for i := range vals {
		vals[i] = float64(i)
	}
	fill(t, st, "d", "m", vals...)
	env := &DeviceEnv{Store: st, Site: "site1", Device: "d"}
	// avg(m) with no explicit window uses defaultWindow (10): mean of
	// 10..19 = 14.5.
	call := &Call{Fn: FuncAvg, Metric: "m"}
	v, ok := call.Value(env)
	if !ok || v != 14.5 {
		t.Fatalf("default window avg = %v, %v", v, ok)
	}
}

func TestRuleBaseSourceRoundtrip(t *testing.T) {
	rb := NewRuleBase()
	mustAdd(t, rb, `
rule "one" level 2 category cpu { when avg(cpu.util, 5) > 90 then alert "hot {device}" }
rule "two" level 3 { when count_above(cpu.util, 90) >= 2 then derive site_hot }`)
	src := rb.Source()
	rb2 := NewRuleBase()
	if _, err := rb2.AddSource(src); err != nil {
		t.Fatalf("reparse rendered source: %v\n%s", err, src)
	}
	if rb2.Len() != 2 {
		t.Fatalf("roundtrip lost rules: %v", rb2.Names())
	}
}

func TestEvaluateEmptyRuleBase(t *testing.T) {
	rb := NewRuleBase()
	alerts, facts := Evaluate(rb, 1, &MapEnv{}, Scope{})
	if len(alerts) != 0 || len(facts) != 0 {
		t.Fatal("empty rule base produced output")
	}
}
