// Package rules implements the rule-based inference layer of the
// processor grid (§2.1, §3.3): a small declarative language for
// management rules, compiled into an AST and evaluated against collected
// data on three levels — fresh-batch scans (L1), per-device consolidation
// with stored history (L2) and cross-device correlation (L3) — with
// forward chaining over derived facts and runtime rule learning.
//
// The language looks like:
//
//	rule "high-cpu" priority 10 level 2 category cpu severity critical {
//	    when avg(cpu.util, 10) > 90 and latest(mem.free) < 256
//	    then alert "sustained CPU pressure on {device}"
//	}
//
//	rule "derive-overload" level 2 {
//	    when latest(cpu.util) > 95
//	    then derive overloaded
//	}
//
//	rule "site-hotspot" level 3 {
//	    when count_above(cpu.util, 90) >= 3 and fleet_avg(cpu.util) > 70
//	    then alert "site-wide CPU overload at {site}"
//	}
package rules

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexical token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLBrace
	tokRBrace
	tokLParen
	tokRParen
	tokComma
	tokOp // > >= < <= == !=
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokNumber:
		return "number"
	case tokString:
		return "string"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokComma:
		return "','"
	case tokOp:
		return "operator"
	default:
		return "unknown token"
	}
}

type token struct {
	kind tokenKind
	text string
	line int
}

// lexer scans rule-language source into tokens.
type lexer struct {
	src  string
	pos  int
	line int
}

func newLexer(src string) *lexer { return &lexer{src: src, line: 1} }

// lexError is a scanning error with a line number.
type lexError struct {
	line int
	msg  string
}

func (e *lexError) Error() string { return fmt.Sprintf("rules: line %d: %s", e.line, e.msg) }

func (l *lexer) errf(format string, args ...any) error {
	return &lexError{line: l.line, msg: fmt.Sprintf(format, args...)}
}

// next scans one token.
func (l *lexer) next() (token, error) {
	l.skipSpaceAndComments()
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, line: l.line}, nil
	}
	c := l.src[l.pos]
	switch {
	case c == '{':
		l.pos++
		return token{kind: tokLBrace, text: "{", line: l.line}, nil
	case c == '}':
		l.pos++
		return token{kind: tokRBrace, text: "}", line: l.line}, nil
	case c == '(':
		l.pos++
		return token{kind: tokLParen, text: "(", line: l.line}, nil
	case c == ')':
		l.pos++
		return token{kind: tokRParen, text: ")", line: l.line}, nil
	case c == ',':
		l.pos++
		return token{kind: tokComma, text: ",", line: l.line}, nil
	case c == '"':
		return l.scanString()
	case c == '>' || c == '<' || c == '=' || c == '!':
		return l.scanOp()
	case c == '-' || c == '.' || unicode.IsDigit(rune(c)):
		return l.scanNumber()
	case isIdentStart(c):
		return l.scanIdent()
	default:
		return token{}, l.errf("unexpected character %q", c)
	}
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch {
		case c == '\n':
			l.line++
			l.pos++
		case c == ' ' || c == '\t' || c == '\r':
			l.pos++
		case c == '#':
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
		default:
			return
		}
	}
}

func (l *lexer) scanString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), line: l.line}, nil
		case '\n':
			return token{}, l.errf("unterminated string starting at offset %d", start)
		case '\\':
			if l.pos+1 >= len(l.src) {
				return token{}, l.errf("dangling escape")
			}
			l.pos++
			switch l.src[l.pos] {
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			case 'n':
				b.WriteByte('\n')
			default:
				return token{}, l.errf("unknown escape \\%c", l.src[l.pos])
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf("unterminated string")
}

func (l *lexer) scanOp() (token, error) {
	c := l.src[l.pos]
	two := ""
	if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
		two = l.src[l.pos : l.pos+2]
	}
	switch two {
	case ">=", "<=", "==", "!=":
		l.pos += 2
		return token{kind: tokOp, text: two, line: l.line}, nil
	}
	switch c {
	case '>', '<':
		l.pos++
		return token{kind: tokOp, text: string(c), line: l.line}, nil
	}
	return token{}, l.errf("unexpected character %q", c)
}

func (l *lexer) scanNumber() (token, error) {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	digits := 0
	for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
		l.pos++
		digits++
	}
	if l.pos < len(l.src) && l.src[l.pos] == '.' {
		l.pos++
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			digits++
		}
	}
	if digits == 0 {
		return token{}, l.errf("malformed number %q", l.src[start:l.pos])
	}
	// Scientific notation: 1e6, 2.5e-3. Only consumed when a complete
	// exponent follows, so identifiers like "e1" remain untouched.
	if l.pos < len(l.src) && (l.src[l.pos] == 'e' || l.src[l.pos] == 'E') {
		mark := l.pos
		l.pos++
		if l.pos < len(l.src) && (l.src[l.pos] == '+' || l.src[l.pos] == '-') {
			l.pos++
		}
		expDigits := 0
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.src[l.pos])) {
			l.pos++
			expDigits++
		}
		if expDigits == 0 {
			l.pos = mark // not an exponent after all
		}
	}
	return token{kind: tokNumber, text: l.src[start:l.pos], line: l.line}, nil
}

func (l *lexer) scanIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.src) && isIdentPart(l.src[l.pos]) {
		l.pos++
	}
	return token{kind: tokIdent, text: l.src[start:l.pos], line: l.line}, nil
}

// Identifiers cover rule keywords, function names and dotted metric
// names such as "if.in.3".
func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || c == '.' || c == '-' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}
