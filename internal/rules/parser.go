package rules

import (
	"fmt"
	"strconv"
	"strings"
)

// Severity of an alert raised by a rule.
type Severity string

// Severities.
const (
	SeverityInfo     Severity = "info"
	SeverityWarning  Severity = "warning"
	SeverityCritical Severity = "critical"
)

func validSeverity(s Severity) bool {
	switch s {
	case SeverityInfo, SeverityWarning, SeverityCritical:
		return true
	}
	return false
}

// ActionKind distinguishes rule consequents.
type ActionKind int

// Action kinds.
const (
	// ActionAlert raises an alert with a message template. {site},
	// {device} and {rule} placeholders are substituted at fire time.
	ActionAlert ActionKind = iota
	// ActionDerive asserts a named fact for forward chaining.
	ActionDerive
)

// Action is a rule consequent.
type Action struct {
	Kind ActionKind
	// Message is the alert template (ActionAlert).
	Message string
	// Fact is the fact name (ActionDerive).
	Fact string
}

// Rule is one compiled management rule.
type Rule struct {
	// Name uniquely identifies the rule in its rule base.
	Name string
	// Priority orders evaluation; higher runs first (default 0).
	Priority int
	// Level is the analysis level: 1 fresh-batch, 2 consolidation,
	// 3 cross-device correlation (default 1).
	Level int
	// Category is the metric category this rule covers ("cpu", "disk",
	// ...); containers advertise categories as capabilities.
	Category string
	// Severity of alerts the rule raises (default warning).
	Severity Severity
	// When is the condition.
	When Expr
	// Then is the consequent.
	Then Action
}

// quoteDSL renders s as a rule-language string literal. The lexer only
// understands the escapes \" \\ and \n (every other byte is taken
// literally), so strconv-style %q quoting — which emits \t, \xNN and
// friends — would produce unparseable source.
func quoteDSL(s string) string {
	var b strings.Builder
	b.WriteByte('"')
	for i := 0; i < len(s); i++ {
		switch c := s[i]; c {
		case '"':
			b.WriteString(`\"`)
		case '\\':
			b.WriteString(`\\`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteByte(c)
		}
	}
	b.WriteByte('"')
	return b.String()
}

// String renders the rule in parseable DSL syntax.
func (r *Rule) String() string {
	head := fmt.Sprintf("rule %s priority %d level %d", quoteDSL(r.Name), r.Priority, r.Level)
	if r.Category != "" {
		head += " category " + r.Category
	}
	head += " severity " + string(r.Severity)
	var then string
	switch r.Then.Kind {
	case ActionAlert:
		then = "alert " + quoteDSL(r.Then.Message)
	case ActionDerive:
		then = "derive " + r.Then.Fact
	}
	return fmt.Sprintf("%s {\n    when %s\n    then %s\n}", head, r.When, then)
}

// parser builds rules from tokens.
type parser struct {
	lex *lexer
	cur token
}

// Parse compiles rule-language source into rules. Multiple rule blocks
// may appear in one source string.
func Parse(src string) ([]*Rule, error) {
	p := &parser{lex: newLexer(src)}
	if err := p.advance(); err != nil {
		return nil, err
	}
	var out []*Rule
	for p.cur.kind != tokEOF {
		r, err := p.parseRule()
		if err != nil {
			return nil, err
		}
		out = append(out, r)
	}
	return out, nil
}

// ParseOne compiles exactly one rule.
func ParseOne(src string) (*Rule, error) {
	rules, err := Parse(src)
	if err != nil {
		return nil, err
	}
	if len(rules) != 1 {
		return nil, fmt.Errorf("rules: expected exactly one rule, got %d", len(rules))
	}
	return rules[0], nil
}

func (p *parser) advance() error {
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.cur = tok
	return nil
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("rules: line %d: %s", p.cur.line, fmt.Sprintf(format, args...))
}

// expect consumes the current token if it matches, else errors.
func (p *parser) expect(kind tokenKind) (token, error) {
	if p.cur.kind != kind {
		return token{}, p.errf("expected %s, found %s %q", kind, p.cur.kind, p.cur.text)
	}
	tok := p.cur
	if err := p.advance(); err != nil {
		return token{}, err
	}
	return tok, nil
}

// expectKeyword consumes an identifier with the given text.
func (p *parser) expectKeyword(kw string) error {
	if p.cur.kind != tokIdent || p.cur.text != kw {
		return p.errf("expected %q, found %q", kw, p.cur.text)
	}
	return p.advance()
}

func (p *parser) parseRule() (*Rule, error) {
	if err := p.expectKeyword("rule"); err != nil {
		return nil, err
	}
	name, err := p.expect(tokString)
	if err != nil {
		return nil, err
	}
	if name.text == "" {
		return nil, p.errf("rule name must not be empty")
	}
	r := &Rule{Name: name.text, Level: 1, Severity: SeverityWarning}

	// Optional attributes until '{'.
	for p.cur.kind == tokIdent {
		attr := p.cur.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		switch attr {
		case "priority":
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			r.Priority = n
		case "level":
			n, err := p.parseInt()
			if err != nil {
				return nil, err
			}
			if n < 1 || n > 3 {
				return nil, p.errf("level must be 1, 2 or 3, got %d", n)
			}
			r.Level = n
		case "category":
			tok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			r.Category = tok.text
		case "severity":
			tok, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			r.Severity = Severity(tok.text)
			if !validSeverity(r.Severity) {
				return nil, p.errf("unknown severity %q", tok.text)
			}
		default:
			return nil, p.errf("unknown rule attribute %q", attr)
		}
	}

	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("when"); err != nil {
		return nil, err
	}
	cond, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	r.When = cond
	if err := p.expectKeyword("then"); err != nil {
		return nil, err
	}
	action, err := p.parseAction()
	if err != nil {
		return nil, err
	}
	r.Then = action
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return r, nil
}

func (p *parser) parseInt() (int, error) {
	tok, err := p.expect(tokNumber)
	if err != nil {
		return 0, err
	}
	n, err := strconv.Atoi(tok.text)
	if err != nil {
		return 0, p.errf("expected integer, found %q", tok.text)
	}
	return n, nil
}

func (p *parser) parseAction() (Action, error) {
	tok, err := p.expect(tokIdent)
	if err != nil {
		return Action{}, err
	}
	switch tok.text {
	case "alert":
		msg, err := p.expect(tokString)
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActionAlert, Message: msg.text}, nil
	case "derive":
		fact, err := p.expect(tokIdent)
		if err != nil {
			return Action{}, err
		}
		return Action{Kind: ActionDerive, Fact: fact.text}, nil
	default:
		return Action{}, p.errf("unknown action %q (want alert or derive)", tok.text)
	}
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	exprs := []Expr{left}
	for p.cur.kind == tokIdent && p.cur.text == "or" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, right)
	}
	if len(exprs) == 1 {
		return left, nil
	}
	return &Or{Exprs: exprs}, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	exprs := []Expr{left}
	for p.cur.kind == tokIdent && p.cur.text == "and" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		exprs = append(exprs, right)
	}
	if len(exprs) == 1 {
		return left, nil
	}
	return &And{Exprs: exprs}, nil
}

func (p *parser) parseUnary() (Expr, error) {
	if p.cur.kind == tokIdent && p.cur.text == "not" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &Not{Expr: inner}, nil
	}
	if p.cur.kind == tokLParen {
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return inner, nil
	}
	// fact(name) is a boolean primary.
	if p.cur.kind == tokIdent && p.cur.text == "fact" {
		if err := p.advance(); err != nil {
			return nil, err
		}
		if _, err := p.expect(tokLParen); err != nil {
			return nil, err
		}
		name, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &FactRef{Name: name.text}, nil
	}
	return p.parseCompare()
}

func (p *parser) parseCompare() (Expr, error) {
	left, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	op, err := p.expect(tokOp)
	if err != nil {
		return nil, err
	}
	right, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	return &Compare{Left: left, Op: op.text, Right: right}, nil
}

func (p *parser) parseTerm() (Term, error) {
	switch p.cur.kind {
	case tokNumber:
		f, err := strconv.ParseFloat(p.cur.text, 64)
		if err != nil {
			return nil, p.errf("bad number %q", p.cur.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return Number(f), nil
	case tokIdent:
		return p.parseCall()
	default:
		return nil, p.errf("expected number or function, found %s %q", p.cur.kind, p.cur.text)
	}
}

// functions that take an optional second numeric argument.
var windowFuncs = map[FuncKind]bool{
	FuncAvg: true, FuncMin: true, FuncMax: true,
	FuncRate: true, FuncTrend: true, FuncStddev: true,
}

// functions that require a threshold second argument.
var thresholdFuncs = map[FuncKind]bool{
	FuncCountAbove: true, FuncCountBelow: true,
}

func (p *parser) parseCall() (Term, error) {
	fn := FuncKind(p.cur.text)
	line := p.cur.line
	switch fn {
	case FuncLatest, FuncFleetAvg:
	default:
		if !windowFuncs[fn] && !thresholdFuncs[fn] {
			return nil, p.errf("unknown function %q", fn)
		}
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	metric, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	call := &Call{Fn: fn, Metric: metric.text}
	if p.cur.kind == tokComma {
		if fn == FuncLatest || fn == FuncFleetAvg {
			return nil, p.errf("%s takes exactly one argument", fn)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		arg, err := p.expect(tokNumber)
		if err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(arg.text, 64)
		if err != nil {
			return nil, p.errf("bad argument %q", arg.text)
		}
		call.Arg = f
		call.argSet = true
	} else if thresholdFuncs[fn] {
		return nil, fmt.Errorf("rules: line %d: %s requires a threshold argument", line, fn)
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	return call, nil
}
