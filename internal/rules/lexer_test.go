package rules

import "testing"

func TestScientificNotationNumbers(t *testing.T) {
	r, err := ParseOne(`rule "big" { when latest(if.in.1) > 1e6 then alert "busy" }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.When.(*Compare).Right.(Number); n != 1e6 {
		t.Fatalf("number = %v", n)
	}
	r2, err := ParseOne(`rule "small" { when latest(x) < 2.5e-3 then alert "m" }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := r2.When.(*Compare).Right.(Number); n != 2.5e-3 {
		t.Fatalf("number = %v", n)
	}
	r3, err := ParseOne(`rule "caps" { when latest(x) > 3E2 then alert "m" }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := r3.When.(*Compare).Right.(Number); n != 300 {
		t.Fatalf("number = %v", n)
	}
}

func TestNumberFollowedByIdentNotExponent(t *testing.T) {
	// "avg(x, 5) and ..." — the 5 is followed by ')' so trivially fine;
	// the subtle case is a bare "e" identifier after a number, which
	// must not be swallowed as a malformed exponent.
	r, err := ParseOne(`rule "r" { when avg(x, 10) > 1 and latest(e1) > 2 then alert "m" }`)
	if err != nil {
		t.Fatal(err)
	}
	and := r.When.(*And)
	call := and.Exprs[1].(*Compare).Left.(*Call)
	if call.Metric != "e1" {
		t.Fatalf("metric = %q", call.Metric)
	}
}

func TestLexerErrorsCarryLineNumbers(t *testing.T) {
	_, err := Parse("rule \"r\" {\n    when latest(x) > @ \n then alert \"m\" }")
	if err == nil {
		t.Fatal("bad char accepted")
	}
	if got := err.Error(); got == "" || !containsLine(got, "2") {
		t.Fatalf("error lacks line number: %q", got)
	}
}

func containsLine(s, line string) bool {
	want := "line " + line
	for i := 0; i+len(want) <= len(s); i++ {
		if s[i:i+len(want)] == want {
			return true
		}
	}
	return false
}
