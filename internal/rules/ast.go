package rules

import (
	"fmt"
	"strings"

	"agentgrid/internal/store"
)

// Env supplies data to rule conditions. Each analysis level provides a
// different implementation: L1 sees only the fresh batch, L2 sees one
// device's stored history, L3 sees every device on a site.
type Env interface {
	// Latest returns the newest value of a metric in the current scope.
	Latest(metric string) (float64, bool)
	// Window returns the last n stored points of a metric (may be empty
	// at level 1, where no history exists).
	Window(metric string, n int) []store.Point
	// FleetLatest returns the newest value of the metric on every device
	// in scope (only meaningful at level 3; others return one element).
	FleetLatest(metric string) []float64
	// Fact reports whether a derived fact has been asserted.
	Fact(name string) bool
}

// Expr is a boolean rule condition.
type Expr interface {
	// Eval computes the condition. A missing metric makes the condition
	// false rather than an error, matching how management rules treat
	// absent data.
	Eval(env Env) bool
	// String renders the expression in parseable DSL syntax.
	String() string
}

// Term is a numeric sub-expression.
type Term interface {
	// Value computes the term; ok is false when underlying data is
	// missing.
	Value(env Env) (float64, bool)
	String() string
}

// ---- Terms ----

// Number is a literal.
type Number float64

// Value implements Term.
func (n Number) Value(Env) (float64, bool) { return float64(n), true }

// String implements Term.
func (n Number) String() string { return trimFloat(float64(n)) }

func trimFloat(f float64) string {
	s := fmt.Sprintf("%g", f)
	return s
}

// FuncKind enumerates the data functions available to conditions.
type FuncKind string

// Data functions.
const (
	FuncLatest     FuncKind = "latest"      // latest(metric)
	FuncAvg        FuncKind = "avg"         // avg(metric, n)
	FuncMin        FuncKind = "min"         // min(metric, n)
	FuncMax        FuncKind = "max"         // max(metric, n)
	FuncRate       FuncKind = "rate"        // rate(metric, n)
	FuncTrend      FuncKind = "trend"       // trend(metric, n)
	FuncStddev     FuncKind = "stddev"      // stddev(metric, n)
	FuncCountAbove FuncKind = "count_above" // count_above(metric, threshold)
	FuncCountBelow FuncKind = "count_below" // count_below(metric, threshold)
	FuncFleetAvg   FuncKind = "fleet_avg"   // fleet_avg(metric)
)

// defaultWindow is the history length used when a windowed function
// omits its second argument.
const defaultWindow = 10

// Call is a data-function term such as avg(cpu.util, 10).
type Call struct {
	Fn     FuncKind
	Metric string
	// Arg is the window size (windowed funcs) or threshold
	// (count_above / count_below).
	Arg float64
	// argSet records whether Arg was explicit (affects String()).
	argSet bool
}

// Value implements Term.
func (c *Call) Value(env Env) (float64, bool) {
	switch c.Fn {
	case FuncLatest:
		return env.Latest(c.Metric)
	case FuncAvg, FuncMin, FuncMax, FuncRate, FuncTrend, FuncStddev:
		n := int(c.Arg)
		if n <= 0 {
			n = defaultWindow
		}
		pts := env.Window(c.Metric, n)
		var v float64
		var err error
		switch c.Fn {
		case FuncAvg:
			v, err = store.Avg(pts)
		case FuncMin:
			v, err = store.Min(pts)
		case FuncMax:
			v, err = store.Max(pts)
		case FuncRate:
			v, err = store.Rate(pts)
		case FuncTrend:
			v, err = store.Trend(pts)
		case FuncStddev:
			v, err = store.Stddev(pts)
		}
		return v, err == nil
	case FuncCountAbove, FuncCountBelow:
		vals := env.FleetLatest(c.Metric)
		count := 0.0
		for _, v := range vals {
			if (c.Fn == FuncCountAbove && v > c.Arg) || (c.Fn == FuncCountBelow && v < c.Arg) {
				count++
			}
		}
		return count, true
	case FuncFleetAvg:
		vals := env.FleetLatest(c.Metric)
		if len(vals) == 0 {
			return 0, false
		}
		var sum float64
		for _, v := range vals {
			sum += v
		}
		return sum / float64(len(vals)), true
	}
	return 0, false
}

// String implements Term.
func (c *Call) String() string {
	if c.argSet {
		return fmt.Sprintf("%s(%s, %s)", c.Fn, c.Metric, trimFloat(c.Arg))
	}
	return fmt.Sprintf("%s(%s)", c.Fn, c.Metric)
}

// ---- Expressions ----

// Compare is a relational test between two terms.
type Compare struct {
	Left  Term
	Op    string // > >= < <= == !=
	Right Term
}

// Eval implements Expr.
func (c *Compare) Eval(env Env) bool {
	l, ok := c.Left.Value(env)
	if !ok {
		return false
	}
	r, ok := c.Right.Value(env)
	if !ok {
		return false
	}
	switch c.Op {
	case ">":
		return l > r
	case ">=":
		return l >= r
	case "<":
		return l < r
	case "<=":
		return l <= r
	case "==":
		return l == r
	case "!=":
		return l != r
	}
	return false
}

// String implements Expr.
func (c *Compare) String() string {
	return fmt.Sprintf("%s %s %s", c.Left, c.Op, c.Right)
}

// And is a conjunction.
type And struct{ Exprs []Expr }

// Eval implements Expr.
func (a *And) Eval(env Env) bool {
	for _, e := range a.Exprs {
		if !e.Eval(env) {
			return false
		}
	}
	return true
}

// String implements Expr.
func (a *And) String() string { return joinExprs(a.Exprs, " and ") }

// Or is a disjunction.
type Or struct{ Exprs []Expr }

// Eval implements Expr.
func (o *Or) Eval(env Env) bool {
	for _, e := range o.Exprs {
		if e.Eval(env) {
			return true
		}
	}
	return false
}

// String implements Expr.
func (o *Or) String() string { return joinExprs(o.Exprs, " or ") }

func joinExprs(exprs []Expr, sep string) string {
	parts := make([]string, len(exprs))
	for i, e := range exprs {
		parts[i] = "(" + e.String() + ")"
	}
	return strings.Join(parts, sep)
}

// Not negates a condition.
type Not struct{ Expr Expr }

// Eval implements Expr.
func (n *Not) Eval(env Env) bool { return !n.Expr.Eval(env) }

// String implements Expr.
func (n *Not) String() string { return "not (" + n.Expr.String() + ")" }

// FactRef tests a derived fact asserted by an earlier rule firing —
// the forward-chaining hook.
type FactRef struct{ Name string }

// Eval implements Expr.
func (f *FactRef) Eval(env Env) bool { return env.Fact(f.Name) }

// String implements Expr.
func (f *FactRef) String() string { return fmt.Sprintf("fact(%s)", f.Name) }
