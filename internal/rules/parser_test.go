package rules

import (
	"strings"
	"testing"
)

func TestParseMinimalRule(t *testing.T) {
	r, err := ParseOne(`rule "high-cpu" { when latest(cpu.util) > 90 then alert "cpu hot" }`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Name != "high-cpu" || r.Level != 1 || r.Priority != 0 || r.Severity != SeverityWarning {
		t.Fatalf("defaults wrong: %+v", r)
	}
	if r.Then.Kind != ActionAlert || r.Then.Message != "cpu hot" {
		t.Fatalf("action = %+v", r.Then)
	}
	cmp, ok := r.When.(*Compare)
	if !ok {
		t.Fatalf("condition type %T", r.When)
	}
	call, ok := cmp.Left.(*Call)
	if !ok || call.Fn != FuncLatest || call.Metric != "cpu.util" {
		t.Fatalf("left term = %+v", cmp.Left)
	}
	if n, ok := cmp.Right.(Number); !ok || n != 90 {
		t.Fatalf("right term = %+v", cmp.Right)
	}
}

func TestParseFullAttributes(t *testing.T) {
	r, err := ParseOne(`
# a commented rule
rule "disk-trend" priority 5 level 2 category disk severity critical {
    when trend(disk.free, 30) < -3.5 and latest(disk.free) < 5000
    then alert "disk filling on {device}"
}`)
	if err != nil {
		t.Fatal(err)
	}
	if r.Priority != 5 || r.Level != 2 || r.Category != "disk" || r.Severity != SeverityCritical {
		t.Fatalf("attributes: %+v", r)
	}
	and, ok := r.When.(*And)
	if !ok || len(and.Exprs) != 2 {
		t.Fatalf("condition: %v", r.When)
	}
}

func TestParseMultipleRules(t *testing.T) {
	rules, err := Parse(`
rule "a" { when latest(x) > 1 then alert "a" }
rule "b" { when latest(y) < 2 then derive yish }
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) != 2 || rules[1].Then.Kind != ActionDerive || rules[1].Then.Fact != "yish" {
		t.Fatalf("rules = %+v", rules)
	}
}

func TestParseBooleanStructure(t *testing.T) {
	r, err := ParseOne(`rule "r" {
        when (latest(a) > 1 or latest(b) > 2) and not latest(c) == 3
        then alert "m"
    }`)
	if err != nil {
		t.Fatal(err)
	}
	and, ok := r.When.(*And)
	if !ok || len(and.Exprs) != 2 {
		t.Fatalf("top = %T", r.When)
	}
	if _, ok := and.Exprs[0].(*Or); !ok {
		t.Fatalf("first = %T", and.Exprs[0])
	}
	if _, ok := and.Exprs[1].(*Not); !ok {
		t.Fatalf("second = %T", and.Exprs[1])
	}
}

func TestParseFactRef(t *testing.T) {
	r, err := ParseOne(`rule "r" { when fact(overloaded) and latest(mem.free) < 100 then alert "m" }`)
	if err != nil {
		t.Fatal(err)
	}
	and := r.When.(*And)
	if f, ok := and.Exprs[0].(*FactRef); !ok || f.Name != "overloaded" {
		t.Fatalf("fact ref = %+v", and.Exprs[0])
	}
}

func TestParseFleetFunctions(t *testing.T) {
	r, err := ParseOne(`rule "r" level 3 {
        when count_above(cpu.util, 90) >= 3 and fleet_avg(cpu.util) > 70
        then alert "site hot"
    }`)
	if err != nil {
		t.Fatal(err)
	}
	and := r.When.(*And)
	ca := and.Exprs[0].(*Compare).Left.(*Call)
	if ca.Fn != FuncCountAbove || ca.Arg != 90 {
		t.Fatalf("count_above = %+v", ca)
	}
	fa := and.Exprs[1].(*Compare).Left.(*Call)
	if fa.Fn != FuncFleetAvg {
		t.Fatalf("fleet_avg = %+v", fa)
	}
}

func TestParseNumberForms(t *testing.T) {
	r, err := ParseOne(`rule "r" { when latest(m) > -12.5 then alert "x" }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := r.When.(*Compare).Right.(Number); n != -12.5 {
		t.Fatalf("number = %v", n)
	}
	// Numbers on the left work too.
	r2, err := ParseOne(`rule "r" { when 3 <= latest(m) then alert "x" }`)
	if err != nil {
		t.Fatal(err)
	}
	if n := r2.When.(*Compare).Left.(Number); n != 3 {
		t.Fatalf("left number = %v", n)
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"missing name":        `rule { when latest(x) > 1 then alert "m" }`,
		"empty name":          `rule "" { when latest(x) > 1 then alert "m" }`,
		"bad level":           `rule "r" level 9 { when latest(x) > 1 then alert "m" }`,
		"bad severity":        `rule "r" severity loud { when latest(x) > 1 then alert "m" }`,
		"unknown attribute":   `rule "r" volume 11 { when latest(x) > 1 then alert "m" }`,
		"unknown function":    `rule "r" { when median(x) > 1 then alert "m" }`,
		"unknown action":      `rule "r" { when latest(x) > 1 then email "m" }`,
		"missing then":        `rule "r" { when latest(x) > 1 }`,
		"missing when":        `rule "r" { then alert "m" }`,
		"unterminated string": `rule "r" { when latest(x) > 1 then alert "m }`,
		"missing operand":     `rule "r" { when latest(x) > then alert "m" }`,
		"missing paren":       `rule "r" { when latest(x > 1 then alert "m" }`,
		"threshold required":  `rule "r" { when count_above(x) > 1 then alert "m" }`,
		"latest extra arg":    `rule "r" { when latest(x, 5) > 1 then alert "m" }`,
		"trailing garbage":    `rule "r" { when latest(x) > 1 then alert "m" } banana`,
		"bad escape":          `rule "r" { when latest(x) > 1 then alert "a\q" }`,
		"stray char":          `rule "r" { when latest(x) > 1 then alert "m" } @`,
	}
	for name, src := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Parse(src); err == nil {
				t.Fatalf("accepted: %s", src)
			}
		})
	}
}

func TestParseOneRejectsMany(t *testing.T) {
	src := `rule "a" { when latest(x) > 1 then alert "a" }
            rule "b" { when latest(y) > 1 then alert "b" }`
	if _, err := ParseOne(src); err == nil {
		t.Fatal("ParseOne accepted two rules")
	}
}

func TestRuleStringRoundtrip(t *testing.T) {
	srcs := []string{
		`rule "a" priority 3 level 2 category cpu severity critical {
            when avg(cpu.util, 10) > 90 or fact(hot)
            then alert "msg {device}"
        }`,
		`rule "b" level 3 {
            when not (count_below(mem.free, 100) == 0)
            then derive mem_crisis
        }`,
		`rule "c" {
            when stddev(if.in.1, 20) > 5 and rate(if.in.1, 5) != 0
            then alert "jitter"
        }`,
	}
	for _, src := range srcs {
		r1, err := ParseOne(src)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		rendered := r1.String()
		r2, err := ParseOne(rendered)
		if err != nil {
			t.Fatalf("reparse of %q: %v", rendered, err)
		}
		if r2.String() != rendered {
			t.Fatalf("String not a fixed point:\n%s\nvs\n%s", rendered, r2.String())
		}
		if r1.Name != r2.Name || r1.Level != r2.Level || r1.Priority != r2.Priority {
			t.Fatal("metadata lost in roundtrip")
		}
	}
}

func TestStringEscapes(t *testing.T) {
	r, err := ParseOne(`rule "r" { when latest(x) > 1 then alert "say \"hi\"\nnewline \\ backslash" }`)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(r.Then.Message, `say "hi"`) || !strings.Contains(r.Then.Message, "\n") {
		t.Fatalf("escapes wrong: %q", r.Then.Message)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := "# leading comment\n\nrule \"r\" # trailing\n{ when latest(x) > 1 # mid\n then alert \"m\" }\n# done"
	if _, err := ParseOne(src); err != nil {
		t.Fatal(err)
	}
}
