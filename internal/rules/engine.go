package rules

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"

	"agentgrid/internal/store"
)

// Alert is one rule firing.
type Alert struct {
	Rule     string   `json:"rule"`
	Severity Severity `json:"severity"`
	Level    int      `json:"level"`
	Message  string   `json:"message"`
	Site     string   `json:"site"`
	Device   string   `json:"device,omitempty"` // empty for site-level (L3) alerts
	Step     int      `json:"step"`
}

// String renders the alert for reports.
func (a Alert) String() string {
	scope := a.Site
	if a.Device != "" {
		scope += "/" + a.Device
	}
	return fmt.Sprintf("[%s] L%d %s %s: %s", a.Severity, a.Level, scope, a.Rule, a.Message)
}

// RuleBase is a mutable, named collection of rules — the knowledge base
// (KdB) of the paper's Figure 2, which agents extend at runtime ("the
// agents of the grid can learn new rules"). Safe for concurrent use.
type RuleBase struct {
	mu    sync.RWMutex
	rules map[string]*Rule // guarded by mu
}

// RuleBase errors.
var (
	ErrDupRule = errors.New("rules: duplicate rule name")
	ErrNoRule  = errors.New("rules: no such rule")
)

// NewRuleBase returns an empty rule base.
func NewRuleBase() *RuleBase {
	return &RuleBase{rules: make(map[string]*Rule)}
}

// Add installs a compiled rule.
func (rb *RuleBase) Add(r *Rule) error {
	if r == nil || r.Name == "" || r.When == nil {
		return errors.New("rules: incomplete rule")
	}
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if _, dup := rb.rules[r.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDupRule, r.Name)
	}
	rb.rules[r.Name] = r
	return nil
}

// AddSource parses rule-language source and installs every rule in it —
// the "learn new rules" path exercised by the interface grid.
func (rb *RuleBase) AddSource(src string) ([]string, error) {
	parsed, err := Parse(src)
	if err != nil {
		return nil, err
	}
	var added []string
	for _, r := range parsed {
		if err := rb.Add(r); err != nil {
			// Roll back the rules added from this source.
			for _, name := range added {
				rb.Remove(name)
			}
			return nil, err
		}
		added = append(added, r.Name)
	}
	return added, nil
}

// Remove deletes a rule by name.
func (rb *RuleBase) Remove(name string) error {
	rb.mu.Lock()
	defer rb.mu.Unlock()
	if _, ok := rb.rules[name]; !ok {
		return fmt.Errorf("%w: %q", ErrNoRule, name)
	}
	delete(rb.rules, name)
	return nil
}

// Get returns a rule by name.
func (rb *RuleBase) Get(name string) (*Rule, bool) {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	r, ok := rb.rules[name]
	return r, ok
}

// Len returns the number of rules.
func (rb *RuleBase) Len() int {
	rb.mu.RLock()
	defer rb.mu.RUnlock()
	return len(rb.rules)
}

// Names returns all rule names, sorted.
func (rb *RuleBase) Names() []string {
	rb.mu.RLock()
	out := make([]string, 0, len(rb.rules))
	for name := range rb.rules {
		out = append(out, name)
	}
	rb.mu.RUnlock()
	sort.Strings(out)
	return out
}

// ForLevel returns the rules of one analysis level, highest priority
// first (ties broken by name for determinism).
func (rb *RuleBase) ForLevel(level int) []*Rule {
	rb.mu.RLock()
	out := make([]*Rule, 0, len(rb.rules))
	for _, r := range rb.rules {
		if r.Level == level {
			out = append(out, r)
		}
	}
	rb.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Priority != out[j].Priority {
			return out[i].Priority > out[j].Priority
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// Categories returns the distinct rule categories present, sorted; the
// processor grid advertises them as container capabilities.
func (rb *RuleBase) Categories() []string {
	rb.mu.RLock()
	seen := make(map[string]bool)
	for _, r := range rb.rules {
		if r.Category != "" {
			seen[r.Category] = true
		}
	}
	rb.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Source renders the whole rule base back to parseable DSL text.
func (rb *RuleBase) Source() string {
	names := rb.Names()
	var b strings.Builder
	for i, name := range names {
		if i > 0 {
			b.WriteString("\n\n")
		}
		r, _ := rb.Get(name)
		b.WriteString(r.String())
	}
	return b.String()
}

// Scope names where an evaluation ran, for alert attribution.
type Scope struct {
	Site   string
	Device string // empty at L3
	Step   int    // logical step of the newest data
}

// factEnv decorates an Env with a mutable fact set for forward chaining.
type factEnv struct {
	Env
	facts map[string]bool
}

func (f *factEnv) Fact(name string) bool {
	if f.facts[name] {
		return true
	}
	return f.Env.Fact(name)
}

// maxChainRounds bounds forward chaining so rule sets that keep deriving
// facts cannot loop forever.
const maxChainRounds = 8

// Evaluate runs every rule of the given level against env with forward
// chaining: derive actions assert facts, and evaluation repeats until no
// new facts appear (or the round bound hits). It returns alerts in
// firing order and the facts derived.
func Evaluate(rb *RuleBase, level int, env Env, scope Scope) ([]Alert, []string) {
	fenv := &factEnv{Env: env, facts: make(map[string]bool)}
	levelRules := rb.ForLevel(level)
	var alerts []Alert
	fired := make(map[string]bool)

	for round := 0; round < maxChainRounds; round++ {
		newFact := false
		for _, r := range levelRules {
			if fired[r.Name] {
				continue
			}
			if !r.When.Eval(fenv) {
				continue
			}
			fired[r.Name] = true
			switch r.Then.Kind {
			case ActionAlert:
				alerts = append(alerts, Alert{
					Rule:     r.Name,
					Severity: r.Severity,
					Level:    r.Level,
					Message:  expandMessage(r.Then.Message, r.Name, scope),
					Site:     scope.Site,
					Device:   scope.Device,
					Step:     scope.Step,
				})
			case ActionDerive:
				if !fenv.facts[r.Then.Fact] {
					fenv.facts[r.Then.Fact] = true
					newFact = true
				}
			}
		}
		if !newFact {
			break
		}
	}

	facts := make([]string, 0, len(fenv.facts))
	for f := range fenv.facts {
		facts = append(facts, f)
	}
	sort.Strings(facts)
	return alerts, facts
}

// expandMessage substitutes {site}, {device} and {rule} placeholders.
func expandMessage(tmpl, rule string, scope Scope) string {
	r := strings.NewReplacer(
		"{site}", scope.Site,
		"{device}", scope.Device,
		"{rule}", rule,
	)
	return r.Replace(tmpl)
}

// ---- Environments ----

// MapEnv is the level-1 environment: only the freshest values from one
// device's batch, no history, no fleet view.
type MapEnv struct {
	// Values maps metric name to its newest value.
	Values map[string]float64
	// Facts seeds pre-asserted facts (usually empty).
	Facts map[string]bool
}

// Latest implements Env.
func (m *MapEnv) Latest(metric string) (float64, bool) {
	v, ok := m.Values[metric]
	return v, ok
}

// Window implements Env: level 1 has no history.
func (m *MapEnv) Window(string, int) []store.Point { return nil }

// FleetLatest implements Env: the device itself is the whole fleet.
func (m *MapEnv) FleetLatest(metric string) []float64 {
	if v, ok := m.Values[metric]; ok {
		return []float64{v}
	}
	return nil
}

// Fact implements Env.
func (m *MapEnv) Fact(name string) bool { return m.Facts[name] }

// DeviceEnv is the level-2 environment: one device backed by the store.
type DeviceEnv struct {
	Store  *store.Store
	Site   string
	Device string
}

func (d *DeviceEnv) key(metric string) string {
	return d.Site + "/" + d.Device + "/" + metric
}

// Latest implements Env.
func (d *DeviceEnv) Latest(metric string) (float64, bool) {
	p, ok := d.Store.Latest(d.key(metric))
	if !ok {
		return 0, false
	}
	return p.Value, true
}

// Window implements Env.
func (d *DeviceEnv) Window(metric string, n int) []store.Point {
	return d.Store.Window(d.key(metric), n)
}

// FleetLatest implements Env: single device.
func (d *DeviceEnv) FleetLatest(metric string) []float64 {
	if v, ok := d.Latest(metric); ok {
		return []float64{v}
	}
	return nil
}

// Fact implements Env.
func (d *DeviceEnv) Fact(string) bool { return false }

// SiteEnv is the level-3 environment: every device of a site, backed by
// the store. Latest/Window aggregate across devices via fleet semantics;
// FleetLatest exposes the per-device values cross-correlation needs.
type SiteEnv struct {
	Store *store.Store
	Site  string
}

// FleetLatest implements Env.
func (s *SiteEnv) FleetLatest(metric string) []float64 {
	keys := s.Store.SeriesForMetric(metric)
	var out []float64
	prefix := s.Site + "/"
	for _, k := range keys {
		if !strings.HasPrefix(k, prefix) {
			continue
		}
		if p, ok := s.Store.Latest(k); ok {
			out = append(out, p.Value)
		}
	}
	return out
}

// Latest implements Env: the fleet average, so scalar functions remain
// meaningful at site scope.
func (s *SiteEnv) Latest(metric string) (float64, bool) {
	vals := s.FleetLatest(metric)
	if len(vals) == 0 {
		return 0, false
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals)), true
}

// Window implements Env: site scope has no single history; returns nil.
func (s *SiteEnv) Window(string, int) []store.Point { return nil }

// Fact implements Env.
func (s *SiteEnv) Fact(string) bool { return false }
