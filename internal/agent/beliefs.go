// Package agent implements the lightweight autonomous agents the grids
// are built from — the role AgentLight [10] plays in the paper. An agent
// has an identity (a FIPA AID), a belief base, message handlers and
// periodic goals; a container (internal/platform) schedules it and
// carries its messages.
package agent

import (
	"fmt"
	"sort"
	"sync"
)

// Beliefs is the agent's knowledge base: a concurrent map of named facts.
// The zero value is ready to use.
type Beliefs struct {
	mu    sync.RWMutex
	facts map[string]any // guarded by mu
	rev   uint64         // guarded by mu
}

// Set records a fact, replacing any previous value.
func (b *Beliefs) Set(key string, value any) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.facts == nil {
		b.facts = make(map[string]any)
	}
	b.facts[key] = value
	b.rev++
}

// Get returns the fact stored under key.
func (b *Beliefs) Get(key string) (any, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	v, ok := b.facts[key]
	return v, ok
}

// GetString returns a string-typed fact; ok is false when the key is
// missing or holds a different type.
func (b *Beliefs) GetString(key string) (string, bool) {
	v, ok := b.Get(key)
	if !ok {
		return "", false
	}
	s, ok := v.(string)
	return s, ok
}

// GetFloat returns a float64-typed fact.
func (b *Beliefs) GetFloat(key string) (float64, bool) {
	v, ok := b.Get(key)
	if !ok {
		return 0, false
	}
	f, ok := v.(float64)
	return f, ok
}

// GetInt returns an int-typed fact.
func (b *Beliefs) GetInt(key string) (int, bool) {
	v, ok := b.Get(key)
	if !ok {
		return 0, false
	}
	i, ok := v.(int)
	return i, ok
}

// Delete removes a fact.
func (b *Beliefs) Delete(key string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	delete(b.facts, key)
	b.rev++
}

// Keys returns all fact names, sorted.
func (b *Beliefs) Keys() []string {
	b.mu.RLock()
	out := make([]string, 0, len(b.facts))
	for k := range b.facts {
		out = append(out, k)
	}
	b.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len returns the number of facts.
func (b *Beliefs) Len() int {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return len(b.facts)
}

// Revision returns a counter that increases on every mutation; agents use
// it to detect belief changes cheaply.
func (b *Beliefs) Revision() uint64 {
	b.mu.RLock()
	defer b.mu.RUnlock()
	return b.rev
}

// Snapshot returns a shallow copy of all facts.
func (b *Beliefs) Snapshot() map[string]any {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make(map[string]any, len(b.facts))
	for k, v := range b.facts {
		out[k] = v
	}
	return out
}

// String summarizes the belief base for logs.
func (b *Beliefs) String() string {
	return fmt.Sprintf("Beliefs(%d facts, rev %d)", b.Len(), b.Revision())
}
