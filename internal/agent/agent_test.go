package agent

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
)

// sink records messages "sent" by an agent under test.
type sink struct {
	mu   sync.Mutex
	msgs []*acl.Message
	ch   chan *acl.Message
}

func newSink() *sink { return &sink{ch: make(chan *acl.Message, 64)} }

func (s *sink) send(_ context.Context, m *acl.Message) error {
	s.mu.Lock()
	s.msgs = append(s.msgs, m)
	s.mu.Unlock()
	s.ch <- m
	return nil
}

func (s *sink) count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.msgs)
}

func startAgent(t *testing.T, a *Agent) context.CancelFunc {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		a.Run(ctx)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Error("agent did not stop")
		}
	})
	return cancel
}

func inboundMsg(p acl.Performative, proto string) *acl.Message {
	return &acl.Message{
		Performative: p,
		Sender:       acl.NewAID("peer", "test"),
		Receivers:    []acl.AID{acl.NewAID("me", "test")},
		Protocol:     proto,
	}
}

func TestSelectorMatches(t *testing.T) {
	m := inboundMsg(acl.Inform, acl.ProtocolRequest)
	m.Ontology = acl.OntologyNetworkManagement
	cases := []struct {
		sel  Selector
		want bool
	}{
		{Selector{}, true},
		{Selector{Performative: acl.Inform}, true},
		{Selector{Performative: acl.Request}, false},
		{Selector{Protocol: acl.ProtocolRequest}, true},
		{Selector{Protocol: acl.ProtocolContractNet}, false},
		{Selector{Ontology: acl.OntologyNetworkManagement}, true},
		{Selector{Ontology: "other"}, false},
		{Selector{Performative: acl.Inform, Protocol: acl.ProtocolRequest, Ontology: acl.OntologyNetworkManagement}, true},
		{Selector{Performative: acl.Inform, Protocol: "wrong"}, false},
	}
	for i, tc := range cases {
		if got := tc.sel.Matches(m); got != tc.want {
			t.Errorf("case %d: Matches = %v, want %v", i, got, tc.want)
		}
	}
}

func TestAgentDispatch(t *testing.T) {
	out := newSink()
	a := New(acl.NewAID("me", "test"), out.send)
	got := make(chan *acl.Message, 1)
	a.HandleFunc(Selector{Performative: acl.Inform}, func(_ context.Context, _ *Agent, m *acl.Message) {
		got <- m
	})
	startAgent(t, a)

	if err := a.Deliver(inboundMsg(acl.Inform, "")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if m.Performative != acl.Inform {
			t.Fatalf("performative = %s", m.Performative)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("handler never ran")
	}
}

func TestAgentNotUnderstood(t *testing.T) {
	out := newSink()
	a := New(acl.NewAID("me", "test"), out.send)
	a.HandleFunc(Selector{Performative: acl.Inform}, func(context.Context, *Agent, *acl.Message) {})
	startAgent(t, a)

	// No handler for request -> agent must reply not-understood.
	if err := a.Deliver(inboundMsg(acl.Request, "")); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-out.ch:
		if m.Performative != acl.NotUnderstood {
			t.Fatalf("reply = %s, want not-understood", m.Performative)
		}
		if m.Receivers[0].Local() != "peer" {
			t.Fatalf("reply addressed to %s", m.Receivers[0])
		}
	case <-time.After(5 * time.Second):
		t.Fatal("no not-understood reply")
	}
}

func TestAgentSendFillsSender(t *testing.T) {
	out := newSink()
	a := New(acl.NewAID("me", "test"), out.send)
	m := &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{acl.NewAID("peer", "test")},
	}
	if err := a.Send(context.Background(), m); err != nil {
		t.Fatal(err)
	}
	if (<-out.ch).Sender.Local() != "me" {
		t.Fatal("sender not filled")
	}
}

func TestMailboxBackpressure(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send, WithMailboxSize(2))
	// Not running: deliveries queue until full.
	if err := a.Deliver(inboundMsg(acl.Inform, "")); err != nil {
		t.Fatal(err)
	}
	if err := a.Deliver(inboundMsg(acl.Inform, "")); err != nil {
		t.Fatal(err)
	}
	if err := a.Deliver(inboundMsg(acl.Inform, "")); !errors.Is(err, ErrMailboxFull) {
		t.Fatalf("third delivery = %v, want ErrMailboxFull", err)
	}
}

func TestGoalRunsPeriodically(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	ran := make(chan struct{}, 16)
	err := a.AddGoal(Goal{
		Name:     "tick",
		Interval: 10 * time.Millisecond,
		Action: func(context.Context, *Agent) error {
			ran <- struct{}{}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	startAgent(t, a)
	for i := 0; i < 3; i++ {
		select {
		case <-ran:
		case <-time.After(5 * time.Second):
			t.Fatalf("goal ran %d times, want >=3", i)
		}
	}
	infos := a.Goals()
	if len(infos) != 1 || infos[0].Name != "tick" || infos[0].Runs < 3 {
		t.Fatalf("Goals = %+v", infos)
	}
}

func TestGoalAddedWhileRunning(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	startAgent(t, a)
	ran := make(chan struct{}, 4)
	err := a.AddGoal(Goal{
		Name:     "late",
		Interval: 10 * time.Millisecond,
		Action: func(context.Context, *Agent) error {
			select {
			case ran <- struct{}{}:
			default:
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-ran:
	case <-time.After(5 * time.Second):
		t.Fatal("late goal never ran")
	}
}

func TestGoalValidation(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	action := func(context.Context, *Agent) error { return nil }
	if err := a.AddGoal(Goal{Name: "", Interval: time.Second, Action: action}); !errors.Is(err, ErrBadGoal) {
		t.Error("empty name accepted")
	}
	if err := a.AddGoal(Goal{Name: "g", Interval: 0, Action: action}); !errors.Is(err, ErrBadGoal) {
		t.Error("zero interval accepted")
	}
	if err := a.AddGoal(Goal{Name: "g", Interval: time.Second}); !errors.Is(err, ErrBadGoal) {
		t.Error("nil action accepted")
	}
	if err := a.AddGoal(Goal{Name: "g", Interval: time.Second, Action: action}); err != nil {
		t.Fatal(err)
	}
	if err := a.AddGoal(Goal{Name: "g", Interval: time.Second, Action: action}); !errors.Is(err, ErrDupGoal) {
		t.Error("duplicate goal accepted")
	}
}

func TestRunGoalNow(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	calls := 0
	a.AddGoal(Goal{Name: "g", Interval: time.Hour, Action: func(context.Context, *Agent) error {
		calls++
		if calls == 2 {
			return errors.New("boom")
		}
		return nil
	}})
	if err := a.RunGoalNow(context.Background(), "g"); err != nil {
		t.Fatalf("first run: %v", err)
	}
	if err := a.RunGoalNow(context.Background(), "g"); err == nil || err.Error() != "boom" {
		t.Fatalf("second run = %v, want boom", err)
	}
	if err := a.RunGoalNow(context.Background(), "nope"); !errors.Is(err, ErrNoGoal) {
		t.Fatalf("missing goal = %v", err)
	}
	infos := a.Goals()
	if infos[0].Runs != 2 || infos[0].LastErr != "boom" {
		t.Fatalf("GoalInfo = %+v", infos[0])
	}
}

func TestRemoveGoal(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	var mu sync.Mutex
	count := 0
	a.AddGoal(Goal{Name: "g", Interval: 10 * time.Millisecond, Action: func(context.Context, *Agent) error {
		mu.Lock()
		count++
		mu.Unlock()
		return nil
	}})
	startAgent(t, a)
	time.Sleep(50 * time.Millisecond)
	if err := a.RemoveGoal("g"); err != nil {
		t.Fatal(err)
	}
	if err := a.RemoveGoal("g"); !errors.Is(err, ErrNoGoal) {
		t.Fatalf("second remove = %v", err)
	}
	mu.Lock()
	after := count
	mu.Unlock()
	time.Sleep(50 * time.Millisecond)
	mu.Lock()
	final := count
	mu.Unlock()
	// Allow one in-flight tick at removal time.
	if final > after+1 {
		t.Fatalf("goal kept running after removal: %d -> %d", after, final)
	}
	if len(a.Goals()) != 0 {
		t.Fatal("goal still listed")
	}
}

func TestAgentStopRejectsWork(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	cancel := startAgent(t, a)
	cancel()
	// Wait until Run observes cancellation.
	deadline := time.After(5 * time.Second)
	for {
		if err := a.Deliver(inboundMsg(acl.Inform, "")); errors.Is(err, ErrStopped) {
			break
		}
		select {
		case <-deadline:
			t.Fatal("agent never reported stopped")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if err := a.Run(context.Background()); !errors.Is(err, ErrStopped) {
		t.Fatalf("second Run = %v", err)
	}
	if err := a.AddGoal(Goal{Name: "x", Interval: time.Second, Action: func(context.Context, *Agent) error { return nil }}); !errors.Is(err, ErrStopped) {
		t.Fatalf("AddGoal after stop = %v", err)
	}
}

func TestGoalErrorLogged(t *testing.T) {
	var mu sync.Mutex
	var logged []error
	a := New(acl.NewAID("me", "test"), newSink().send,
		WithErrorLog(func(_ acl.AID, err error) {
			mu.Lock()
			logged = append(logged, err)
			mu.Unlock()
		}))
	a.AddGoal(Goal{Name: "bad", Interval: time.Hour, Action: func(context.Context, *Agent) error {
		return errors.New("kaput")
	}})
	a.RunGoalNow(context.Background(), "bad")
	mu.Lock()
	defer mu.Unlock()
	if len(logged) != 1 {
		t.Fatalf("logged %d errors", len(logged))
	}
}

func TestNewConversationIDUnique(t *testing.T) {
	a := New(acl.NewAID("me", "test"), newSink().send)
	if a.NewConversationID() == a.NewConversationID() {
		t.Fatal("conversation ids repeat")
	}
	if a.ID().Local() != "me" {
		t.Fatal("ID wrong")
	}
	if a.Beliefs() == nil || a.Conversations() == nil {
		t.Fatal("accessors returned nil")
	}
}
