package agent

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// SendFunc transmits an outbound message on behalf of the agent. The
// container supplies it; agents never touch transports directly.
type SendFunc func(ctx context.Context, m *acl.Message) error

// Handler processes one inbound message. Handlers run on the agent's
// single scheduling goroutine, so they may use agent state freely but
// must not block for long.
type Handler func(ctx context.Context, a *Agent, m *acl.Message)

// Selector matches inbound messages to handlers. Empty fields match
// anything; all non-empty fields must match.
type Selector struct {
	Performative acl.Performative
	Protocol     string
	Ontology     string
}

// Matches reports whether m satisfies the selector.
func (s Selector) Matches(m *acl.Message) bool {
	if s.Performative != "" && m.Performative != s.Performative {
		return false
	}
	if s.Protocol != "" && m.Protocol != s.Protocol {
		return false
	}
	if s.Ontology != "" && m.Ontology != s.Ontology {
		return false
	}
	return true
}

// Goal is a periodic intention: run Action every Interval. This models
// the paper's collector goals ("extract managed object values ... between
// time intervals") and is also used for heartbeats and sweeps.
type Goal struct {
	// Name identifies the goal within the agent; unique.
	Name string
	// Interval between runs. Must be positive.
	Interval time.Duration
	// Action runs on each tick, on a goal-owned goroutine.
	Action func(ctx context.Context, a *Agent) error
}

// GoalInfo is the introspectable state of a goal.
type GoalInfo struct {
	Name     string
	Interval time.Duration
	Runs     uint64
	LastErr  string
}

// Agent errors.
var (
	ErrMailboxFull = errors.New("agent: mailbox full")
	ErrStopped     = errors.New("agent: stopped")
	ErrDupGoal     = errors.New("agent: duplicate goal name")
	ErrNoGoal      = errors.New("agent: no such goal")
	ErrBadGoal     = errors.New("agent: goal needs name, positive interval and action")
)

type goalState struct {
	goal    Goal
	cancel  context.CancelFunc
	mu      sync.Mutex
	runs    uint64
	lastErr string
}

// Option configures an Agent.
type Option func(*Agent)

// WithMailboxSize sets the inbox capacity (default 256).
func WithMailboxSize(n int) Option {
	return func(a *Agent) { a.mailboxSize = n }
}

// WithErrorLog installs a sink for handler/goal errors. By default errors
// are recorded in GoalInfo and otherwise dropped.
func WithErrorLog(f func(agent acl.AID, err error)) Option {
	return func(a *Agent) { a.errLog = f }
}

// WithTracer attaches the causal tracer the agent's behaviours record
// spans into. A nil tracer (the default) makes every span operation a
// no-op.
func WithTracer(t *trace.Tracer) Option {
	return func(a *Agent) { a.tracer = t }
}

// WithHandleHistogram records every message dispatch's wall time into
// h. A nil histogram (the default) costs nothing beyond the EWMA the
// agent always keeps.
func WithHandleHistogram(h *telemetry.Histogram) Option {
	return func(a *Agent) { a.handleHist = h }
}

// Agent is a single autonomous agent.
type Agent struct {
	id      acl.AID
	send    SendFunc
	ids     *acl.IDSource
	beliefs Beliefs
	convs   acl.Tracker

	mailboxSize int
	errLog      func(acl.AID, error)
	tracer      *trace.Tracer
	handleHist  *telemetry.Histogram
	handleEWMA  telemetry.EWMA

	mu       sync.Mutex
	inbox    chan *acl.Message     // the channel is its own synchronization; see Deliver
	handlers []handlerEntry        // guarded by mu
	goals    map[string]*goalState // guarded by mu
	running  bool                  // guarded by mu
	stopped  bool                  // guarded by mu
	runCtx   context.Context       // guarded by mu
	wg       sync.WaitGroup
}

type handlerEntry struct {
	sel Selector
	h   Handler
}

// New creates an agent with the given identity. send carries its outbound
// messages.
func New(id acl.AID, send SendFunc, opts ...Option) *Agent {
	a := &Agent{
		id:          id,
		send:        send,
		ids:         acl.NewIDSource(id.Name),
		mailboxSize: 256,
		goals:       make(map[string]*goalState),
	}
	for _, opt := range opts {
		opt(a)
	}
	a.inbox = make(chan *acl.Message, a.mailboxSize)
	return a
}

// ID returns the agent's identifier.
func (a *Agent) ID() acl.AID { return a.id }

// Beliefs returns the agent's belief base.
func (a *Agent) Beliefs() *Beliefs { return &a.beliefs }

// Conversations returns the agent's conversation tracker.
func (a *Agent) Conversations() *acl.Tracker { return &a.convs }

// NewConversationID mints a conversation identifier unique to this agent.
func (a *Agent) NewConversationID() string { return a.ids.Next() }

// Tracer returns the agent's causal tracer; nil when untraced. Safe to
// call through directly: every tracer method no-ops on nil.
func (a *Agent) Tracer() *trace.Tracer { return a.tracer }

// HandleFunc registers a handler for messages matching sel. Handlers are
// consulted in registration order; every matching handler runs.
func (a *Agent) HandleFunc(sel Selector, h Handler) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.handlers = append(a.handlers, handlerEntry{sel, h})
}

// Deliver enqueues an inbound message. It is called by the container and
// never blocks: when the mailbox is full it returns ErrMailboxFull so the
// container can count the drop.
func (a *Agent) Deliver(m *acl.Message) error {
	a.mu.Lock()
	stopped := a.stopped
	a.mu.Unlock()
	if stopped {
		return ErrStopped
	}
	select {
	case a.inbox <- m:
		return nil
	default:
		return ErrMailboxFull
	}
}

// MailboxDepth returns how many messages are queued awaiting dispatch.
// Reading channel length is inherently racy but exactly right for
// telemetry: it is a point-in-time queue depth.
func (a *Agent) MailboxDepth() int { return len(a.inbox) }

// MailboxCap returns the inbox capacity.
func (a *Agent) MailboxCap() int { return cap(a.inbox) }

// HandleLatency returns the exponentially weighted moving average of
// message dispatch wall time, in seconds — zero before the first
// message. The container folds this into its measured load.
func (a *Agent) HandleLatency() float64 { return a.handleEWMA.Value() }

// Send transmits a message from this agent, filling in the sender.
func (a *Agent) Send(ctx context.Context, m *acl.Message) error {
	if m.Sender.IsZero() {
		m.Sender = a.id
	}
	return a.send(ctx, m)
}

// Run processes inbound messages and runs goals until ctx is cancelled.
// It returns ctx.Err. Run may be called once.
func (a *Agent) Run(ctx context.Context) error {
	a.mu.Lock()
	if a.running || a.stopped {
		a.mu.Unlock()
		return ErrStopped
	}
	a.running = true
	a.runCtx = ctx
	// Start goroutines for goals added before Run.
	for _, gs := range a.goals {
		a.startGoal(ctx, gs)
	}
	a.mu.Unlock()

	for {
		select {
		case <-ctx.Done():
			a.mu.Lock()
			a.running = false
			a.stopped = true
			a.mu.Unlock()
			a.wg.Wait()
			return ctx.Err()
		case m := <-a.inbox:
			a.dispatch(ctx, m)
		}
	}
}

// dispatch runs every matching handler for m.
func (a *Agent) dispatch(ctx context.Context, m *acl.Message) {
	start := time.Now()
	defer func() {
		d := time.Since(start)
		a.handleEWMA.Observe(d)
		a.handleHist.Observe(d)
	}()
	a.mu.Lock()
	handlers := make([]handlerEntry, len(a.handlers))
	copy(handlers, a.handlers)
	a.mu.Unlock()
	// One delivery, one span: handlers see the span via ctx, and the
	// message is re-stamped so replies and spans they open parent under
	// this hop rather than under the remote sender.
	if sp := a.tracer.ContinueFromMessage("agent.handle", m); sp != nil {
		sp.SetAttr("agent", a.id.Name)
		sp.SetAttr("performative", string(m.Performative))
		ctx = trace.NewContext(ctx, sp)
		sp.Stamp(m)
		defer sp.End()
	}
	matched := false
	for _, e := range handlers {
		if e.sel.Matches(m) {
			matched = true
			e.h(ctx, a, m)
		}
	}
	if !matched {
		// FIPA: reply not-understood when nothing handles the act.
		if m.Performative != acl.NotUnderstood && !m.Sender.Equal(a.id) {
			reply := m.Reply(a.id, acl.NotUnderstood)
			if err := a.send(ctx, reply); err != nil && a.errLog != nil {
				a.errLog(a.id, fmt.Errorf("not-understood reply: %w", err))
			}
		}
	}
}

// AddGoal installs a periodic goal. If the agent is running the goal
// starts immediately.
func (a *Agent) AddGoal(g Goal) error {
	if g.Name == "" || g.Interval <= 0 || g.Action == nil {
		return ErrBadGoal
	}
	a.mu.Lock()
	defer a.mu.Unlock()
	if a.stopped {
		return ErrStopped
	}
	if _, dup := a.goals[g.Name]; dup {
		return fmt.Errorf("%w: %q", ErrDupGoal, g.Name)
	}
	gs := &goalState{goal: g}
	a.goals[g.Name] = gs
	if a.running {
		a.startGoal(a.runCtx, gs)
	}
	return nil
}

// startGoal launches the goal loop. Caller holds a.mu.
func (a *Agent) startGoal(ctx context.Context, gs *goalState) {
	gctx, cancel := context.WithCancel(ctx)
	gs.cancel = cancel
	a.wg.Add(1)
	go func() {
		defer a.wg.Done()
		ticker := time.NewTicker(gs.goal.Interval)
		defer ticker.Stop()
		for {
			select {
			case <-gctx.Done():
				return
			case <-ticker.C:
				a.runGoalOnce(gctx, gs)
			}
		}
	}()
}

func (a *Agent) runGoalOnce(ctx context.Context, gs *goalState) {
	err := gs.goal.Action(ctx, a)
	gs.mu.Lock()
	gs.runs++
	if err != nil {
		gs.lastErr = err.Error()
	} else {
		gs.lastErr = ""
	}
	gs.mu.Unlock()
	if err != nil && a.errLog != nil {
		a.errLog(a.id, fmt.Errorf("goal %s: %w", gs.goal.Name, err))
	}
}

// RunGoalNow executes a goal immediately on the caller's goroutine,
// outside its schedule. Tests and the interface grid ("run this report
// now") use it for determinism.
func (a *Agent) RunGoalNow(ctx context.Context, name string) error {
	a.mu.Lock()
	gs, ok := a.goals[name]
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoGoal, name)
	}
	a.runGoalOnce(ctx, gs)
	gs.mu.Lock()
	defer gs.mu.Unlock()
	if gs.lastErr != "" {
		return errors.New(gs.lastErr)
	}
	return nil
}

// RemoveGoal stops and removes a goal.
func (a *Agent) RemoveGoal(name string) error {
	a.mu.Lock()
	gs, ok := a.goals[name]
	if ok {
		delete(a.goals, name)
	}
	a.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoGoal, name)
	}
	if gs.cancel != nil {
		gs.cancel()
	}
	return nil
}

// Goals returns introspection info for all goals, sorted by name.
func (a *Agent) Goals() []GoalInfo {
	a.mu.Lock()
	states := make([]*goalState, 0, len(a.goals))
	for _, gs := range a.goals {
		states = append(states, gs)
	}
	a.mu.Unlock()
	out := make([]GoalInfo, 0, len(states))
	for _, gs := range states {
		gs.mu.Lock()
		out = append(out, GoalInfo{
			Name:     gs.goal.Name,
			Interval: gs.goal.Interval,
			Runs:     gs.runs,
			LastErr:  gs.lastErr,
		})
		gs.mu.Unlock()
	}
	sortGoalInfo(out)
	return out
}

func sortGoalInfo(s []GoalInfo) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j-1].Name > s[j].Name; j-- {
			s[j-1], s[j] = s[j], s[j-1]
		}
	}
}
