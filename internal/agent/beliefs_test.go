package agent

import (
	"strings"
	"sync"
	"testing"
)

func TestBeliefsSetGet(t *testing.T) {
	var b Beliefs
	b.Set("device", "router-1")
	b.Set("cpu", 42.5)
	b.Set("count", 7)

	if s, ok := b.GetString("device"); !ok || s != "router-1" {
		t.Errorf("GetString = %q, %v", s, ok)
	}
	if f, ok := b.GetFloat("cpu"); !ok || f != 42.5 {
		t.Errorf("GetFloat = %v, %v", f, ok)
	}
	if i, ok := b.GetInt("count"); !ok || i != 7 {
		t.Errorf("GetInt = %v, %v", i, ok)
	}
	if _, ok := b.Get("missing"); ok {
		t.Error("phantom fact")
	}
}

func TestBeliefsTypedGetMismatch(t *testing.T) {
	var b Beliefs
	b.Set("x", 3) // int, not string or float
	if _, ok := b.GetString("x"); ok {
		t.Error("GetString accepted int")
	}
	if _, ok := b.GetFloat("x"); ok {
		t.Error("GetFloat accepted int")
	}
	if _, ok := b.GetInt("nothere"); ok {
		t.Error("GetInt on missing key")
	}
}

func TestBeliefsDeleteAndKeys(t *testing.T) {
	var b Beliefs
	b.Set("b", 1)
	b.Set("a", 2)
	b.Set("c", 3)
	b.Delete("b")
	keys := b.Keys()
	if len(keys) != 2 || keys[0] != "a" || keys[1] != "c" {
		t.Fatalf("Keys = %v", keys)
	}
	if b.Len() != 2 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBeliefsRevision(t *testing.T) {
	var b Beliefs
	r0 := b.Revision()
	b.Set("x", 1)
	r1 := b.Revision()
	if r1 <= r0 {
		t.Fatal("Set did not bump revision")
	}
	b.Delete("x")
	if b.Revision() <= r1 {
		t.Fatal("Delete did not bump revision")
	}
}

func TestBeliefsSnapshotIsolated(t *testing.T) {
	var b Beliefs
	b.Set("x", 1)
	snap := b.Snapshot()
	snap["x"] = 99
	if v, _ := b.GetInt("x"); v != 1 {
		t.Fatal("snapshot aliased belief base")
	}
}

func TestBeliefsConcurrent(t *testing.T) {
	var b Beliefs
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := string(rune('a' + i))
			for j := 0; j < 200; j++ {
				b.Set(key, j)
				b.Get(key)
				b.Keys()
				b.Snapshot()
			}
		}(i)
	}
	wg.Wait()
	if b.Len() != 8 {
		t.Fatalf("Len = %d", b.Len())
	}
}

func TestBeliefsString(t *testing.T) {
	var b Beliefs
	b.Set("x", 1)
	if s := b.String(); !strings.Contains(s, "1 facts") {
		t.Errorf("String = %q", s)
	}
}
