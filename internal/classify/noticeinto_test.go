package classify

import (
	"testing"
)

func noticeIntoSamples() []*Notice {
	return []*Notice{
		{Collector: "cg-1@site1", Clusters: []Cluster{
			{Key: "site1/h1", Site: "site1", Device: "h1", Class: "host",
				Categories: []string{"cpu", "memory"}, Records: 24, MaxStep: 480},
			{Key: "site1/r1", Site: "site1", Device: "r1", Class: "router",
				Categories: []string{"network"}, Records: 32, MaxStep: 481},
		}},
		{Collector: "cg-2@site2", Clusters: []Cluster{
			{Key: "shard-0", Categories: []string{}, Records: 7, MaxStep: 9},
		}},
		{Collector: "cg-3@site3"},
	}
}

// TestDecodeNoticeIntoMatchesDecodeNotice decodes both encodings of
// every sample through one reused scratch and requires results
// identical to the allocating decoder — including after the scratch
// held a larger notice (stale clusters/categories must not survive).
func TestDecodeNoticeIntoMatchesDecodeNotice(t *testing.T) {
	var scratch Notice
	encode := func(n *Notice, binary bool) []byte {
		t.Helper()
		var data []byte
		var err error
		if binary {
			data, err = EncodeNoticeBinary(n)
		} else {
			data, err = EncodeNotice(n)
		}
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	check := func(data []byte) {
		t.Helper()
		want, err := DecodeNotice(data)
		if err != nil {
			t.Fatal(err)
		}
		if err := DecodeNoticeInto(data, &scratch); err != nil {
			t.Fatalf("DecodeNoticeInto: %v", err)
		}
		assertNoticesEqual(t, want, &scratch)
	}
	// Largest first, then smaller: scratch reuse must shrink cleanly.
	for _, binary := range []bool{true, false} {
		for _, n := range noticeIntoSamples() {
			check(encode(n, binary))
		}
		// And back up: growth after shrink.
		check(encode(noticeIntoSamples()[0], binary))
	}
}

func assertNoticesEqual(t *testing.T, want, got *Notice) {
	t.Helper()
	if want.Collector != got.Collector {
		t.Fatalf("collector %q != %q", got.Collector, want.Collector)
	}
	if len(want.Clusters) != len(got.Clusters) {
		t.Fatalf("cluster count %d != %d", len(got.Clusters), len(want.Clusters))
	}
	for i := range want.Clusters {
		w, g := &want.Clusters[i], &got.Clusters[i]
		if w.Key != g.Key || w.Site != g.Site || w.Device != g.Device || w.Class != g.Class ||
			w.Records != g.Records || w.MaxStep != g.MaxStep {
			t.Fatalf("cluster %d: %+v != %+v", i, g, w)
		}
		if len(w.Categories) != len(g.Categories) {
			t.Fatalf("cluster %d categories %v != %v", i, g.Categories, w.Categories)
		}
		for j := range w.Categories {
			if w.Categories[j] != g.Categories[j] {
				t.Fatalf("cluster %d category %d %q != %q", i, j, g.Categories[j], w.Categories[j])
			}
		}
	}
}

// TestDecodeNoticeIntoRejects mirrors the error cases: hostile bytes
// must fail both decoders and leave the scratch with no phantom
// clusters.
func TestDecodeNoticeIntoRejects(t *testing.T) {
	good, err := EncodeNoticeBinary(noticeIntoSamples()[0])
	if err != nil {
		t.Fatal(err)
	}
	var scratch Notice
	if err := DecodeNoticeInto(good, &scratch); err != nil {
		t.Fatal(err)
	}
	for _, data := range [][]byte{
		{},
		{noticeMagic},
		{noticeMagic, 99},
		good[:len(good)-1],
		append(append([]byte{}, good...), 0xff),
	} {
		if _, err := DecodeNotice(data); err == nil {
			t.Fatalf("DecodeNotice accepted % x", data)
		}
		if err := DecodeNoticeInto(data, &scratch); err == nil {
			t.Fatalf("DecodeNoticeInto accepted % x", data)
		}
		if len(scratch.Clusters) != 0 {
			t.Fatalf("failed decode left %d phantom clusters", len(scratch.Clusters))
		}
		// The scratch must still be fully usable after a failure.
		if err := DecodeNoticeInto(good, &scratch); err != nil {
			t.Fatal(err)
		}
		if len(scratch.Clusters) != 2 {
			t.Fatalf("recovery decode got %d clusters", len(scratch.Clusters))
		}
	}
}
