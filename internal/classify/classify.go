// Package classify implements the classifier agent grid (CLG, §3.2): it
// receives heterogeneous batches from collectors, parses the common
// representation, classifies and indexes records, stores them, clusters
// the data so analysis can be distributed without losing meaning, and
// notifies the processor grid with a FIPA ACL message that data is
// present.
package classify

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/flight"
	"agentgrid/internal/obs"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
)

// Sink persists classified records. *store.Store and *store.ReplicaSet
// both satisfy it.
type Sink interface {
	Append(r obs.Record) error
}

// BatchSink is an optional Sink extension: a sink that can ingest a
// whole batch under one lock acquisition. *store.Store and
// *store.ReplicaSet both satisfy it; the classifier uses it when
// present instead of per-record Appends. The batch is only valid for
// the duration of the call — the classifier hands sinks a pooled
// scratch — so an implementation that retains records past the return
// must copy them (both store sinks do, into their series).
type BatchSink interface {
	AppendBatch(b *obs.Batch) error
}

// shardIndexer is an optional Sink extension: a lock-striped sink that
// can name the stripe owning a device. The classifier uses it to tag
// ingest flight events with the shard the batch landed on.
type shardIndexer interface {
	ShardIndex(site, device string) int
}

// Cluster is one meaning-preserving unit of analysis work: by default
// all records of one device in one batch, so cross-metric rules for a
// device never straddle a split (§3.2: data must be divided "in such a
// way that there are no losses of meaning in the information").
type Cluster struct {
	// Key identifies the cluster ("site/device" for device affinity,
	// "shard-N" for the ablation strategy).
	Key string `json:"key"`
	// Site and Device are set for device-affine clusters.
	Site   string `json:"site,omitempty"`
	Device string `json:"device,omitempty"`
	// Class is the device class when uniform within the cluster.
	Class string `json:"class,omitempty"`
	// Categories are the metric categories present, sorted.
	Categories []string `json:"categories"`
	// Records counts observations in the cluster.
	Records int `json:"records"`
	// MaxStep is the newest logical step in the cluster.
	MaxStep int `json:"max_step"`
}

// Notice is the content of the classifier's "data present" message to
// the processor grid root.
type Notice struct {
	// Collector is the batch's source agent.
	Collector string `json:"collector"`
	// Clusters summarize the stored data awaiting analysis.
	Clusters []Cluster `json:"clusters"`
}

// EncodeNotice serializes a notice for ACL content (JSON form).
func EncodeNotice(n *Notice) ([]byte, error) { return json.Marshal(n) }

// DecodeNotice parses a notice from ACL content, dispatching on the
// leading byte: a JSON notice starts with '{', the binary form with its
// own magic. Consumers therefore accept either encoding transparently.
func DecodeNotice(data []byte) (*Notice, error) {
	if len(data) > 0 && data[0] == noticeMagic {
		return decodeNoticeBinary(data)
	}
	var n Notice
	if err := json.Unmarshal(data, &n); err != nil {
		return nil, fmt.Errorf("classify: decode notice: %w", err)
	}
	return &n, nil
}

// Strategy decides how a batch's records group into clusters. The
// default, DeviceAffinity, is the paper's design; RandomShard exists for
// the clustering ablation (experiment X6).
type Strategy interface {
	// Name identifies the strategy.
	Name() string
	// Cluster partitions records into clusters. Every record must land
	// in exactly one cluster.
	Cluster(records []obs.Record, ont *obs.Ontology) []Cluster
}

// DeviceAffinity groups records by site/device.
type DeviceAffinity struct{}

// Name implements Strategy.
func (DeviceAffinity) Name() string { return "device-affinity" }

// Cluster implements Strategy.
func (DeviceAffinity) Cluster(records []obs.Record, ont *obs.Ontology) []Cluster {
	byDev := make(map[string][]obs.Record)
	for _, r := range records {
		key := r.Site + "/" + r.Device
		byDev[key] = append(byDev[key], r)
	}
	keys := make([]string, 0, len(byDev))
	for k := range byDev {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Cluster, 0, len(keys))
	for _, key := range keys {
		recs := byDev[key]
		c := Cluster{
			Key:        key,
			Site:       recs[0].Site,
			Device:     recs[0].Device,
			Class:      recs[0].Class,
			Records:    len(recs),
			Categories: categoriesOf(recs, ont),
		}
		for _, r := range recs {
			if r.Step > c.MaxStep {
				c.MaxStep = r.Step
			}
		}
		out = append(out, c)
	}
	return out
}

// RandomShard splits records round-robin into N shards regardless of
// device — the strawman that loses cross-metric meaning.
type RandomShard struct {
	// N is the shard count (minimum 1).
	N int
}

// Name implements Strategy.
func (s RandomShard) Name() string { return "random-shard" }

// Cluster implements Strategy.
func (s RandomShard) Cluster(records []obs.Record, ont *obs.Ontology) []Cluster {
	n := s.N
	if n < 1 {
		n = 1
	}
	shards := make([][]obs.Record, n)
	for i, r := range records {
		shards[i%n] = append(shards[i%n], r)
	}
	var out []Cluster
	for i, recs := range shards {
		if len(recs) == 0 {
			continue
		}
		c := Cluster{
			Key:        fmt.Sprintf("shard-%d", i),
			Site:       recs[0].Site,
			Records:    len(recs),
			Categories: categoriesOf(recs, ont),
		}
		for _, r := range recs {
			if r.Step > c.MaxStep {
				c.MaxStep = r.Step
			}
		}
		out = append(out, c)
	}
	return out
}

func categoriesOf(records []obs.Record, ont *obs.Ontology) []string {
	seen := make(map[string]bool)
	for _, r := range records {
		if ont != nil {
			seen[string(ont.Category(r.Metric))] = true
		}
	}
	out := make([]string, 0, len(seen))
	for c := range seen {
		out = append(out, c)
	}
	sort.Strings(out)
	return out
}

// Config configures a Classifier.
type Config struct {
	// Store persists classified records.
	Store Sink
	// Processor is the PG root notified when data is present.
	Processor acl.AID
	// Ontology classifies metrics into categories.
	Ontology *obs.Ontology
	// Strategy clusters batches (default DeviceAffinity).
	Strategy Strategy
	// BinaryNotices emits "data present" notices in the compact binary
	// encoding instead of JSON. DecodeNotice dispatches on the content,
	// so processors understand either; enable once every consumer in
	// the grid runs a DecodeNotice that dispatches.
	BinaryNotices bool
	// ErrorLog receives parse/store errors. Optional.
	ErrorLog func(error)
	// Metrics, when set, registers the classifier's counters and
	// ingest latency histogram labeled with the hosting container.
	// Optional.
	Metrics *telemetry.Registry
	// Flight, when set, journals every batch ingest (duration, record
	// count, outcome, trace link) under classify.ingest. Optional.
	Flight *flight.Recorder
}

// Stats counts classifier activity.
type Stats struct {
	Batches     uint64
	Records     uint64
	ParseErrors uint64
	StoreErrors uint64
	Notices     uint64
}

// Classifier is a classifier-grid agent.
type Classifier struct {
	a   *agent.Agent
	cfg Config

	mu    sync.Mutex
	stats Stats // guarded by mu

	mBatches     *telemetry.Counter
	mRecords     *telemetry.Counter
	mParseErrors *telemetry.Counter
	mStoreErrors *telemetry.Counter
	mNotices     *telemetry.Counter
	mIngestSec   *telemetry.Histogram

	fIngest *flight.Journal
}

// New wires classifier behaviour onto an agent: it consumes XML batch
// informs and emits cluster notices to the processor root.
func New(a *agent.Agent, cfg Config) (*Classifier, error) {
	if cfg.Store == nil {
		return nil, errors.New("classify: config needs a store")
	}
	if cfg.Processor.IsZero() {
		return nil, errors.New("classify: config needs a processor AID")
	}
	if cfg.Strategy == nil {
		cfg.Strategy = DeviceAffinity{}
	}
	c := &Classifier{a: a, cfg: cfg}
	r := cfg.Metrics
	l := telemetry.Labels{"container": a.ID().Platform()}
	c.mBatches = r.Counter("classify_batches_total", "record batches ingested", l)
	c.mRecords = r.Counter("classify_records_total", "records classified and stored", l)
	c.mParseErrors = r.Counter("classify_errors_parse_total", "batches that failed to parse", l)
	c.mStoreErrors = r.Counter("classify_errors_store_total", "records that failed to persist", l)
	c.mNotices = r.Counter("classify_notices_total", "cluster notices sent to the processor root", l)
	c.mIngestSec = r.Histogram("classify_ingest_seconds", "batch ingest pipeline wall time", l)
	c.fIngest = cfg.Flight.Journal("classify.ingest")
	a.HandleFunc(agent.Selector{
		Performative: acl.Inform,
		Ontology:     acl.OntologyNetworkManagement,
	}, c.handleBatch)
	return c, nil
}

// Agent returns the underlying agent.
func (c *Classifier) Agent() *agent.Agent { return c.a }

// Stats returns activity counters.
func (c *Classifier) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// handleBatch is the inform handler: parse, classify, store, cluster,
// notify — the full §3.2 pipeline.
func (c *Classifier) handleBatch(ctx context.Context, a *agent.Agent, m *acl.Message) {
	start := time.Now()
	sp := a.Tracer().ContinueFromMessage("classify.ingest", m)
	var (
		records int
		shard   = -1
		evErr   error
	)
	defer func() {
		d := time.Since(start)
		// The trace-linked observation is what puts an exemplar in the
		// ingest histogram's hot bucket: p99 bucket → trace ID → span
		// tree.
		c.mIngestSec.ObserveTrace(d, sp.TID())
		if c.fIngest != nil {
			e := flight.Event{
				Container:    a.ID().Platform(),
				Conversation: m.ConversationID,
				TraceID:      sp.TID(),
				Dur:          d,
				Size:         records,
			}
			e.TagShard(shard)
			if evErr != nil {
				e.Outcome = flight.OutcomeError
				e.Err = evErr.Error()
			}
			c.fIngest.Emit(e)
		}
	}()
	ctx = trace.NewContext(ctx, sp)
	defer sp.End()
	batch, err := obs.UnmarshalBatch(m.Content)
	if err != nil {
		evErr = err
		sp.SetError(err)
		c.mu.Lock()
		c.stats.ParseErrors++
		c.mu.Unlock()
		c.mParseErrors.Inc()
		c.logErr(fmt.Errorf("classify: batch from %s: %w", m.Sender, err))
		_ = a.Send(ctx, m.Reply(a.ID(), acl.NotUnderstood))
		return
	}
	records = len(batch.Records)
	// A collector batch carries one device, so one stripe owns it; tag
	// the flight event with it when the sink is lock-striped.
	if records > 0 {
		if si, ok := c.cfg.Store.(shardIndexer); ok {
			shard = si.ShardIndex(batch.Records[0].Site, batch.Records[0].Device)
		}
	}
	sp.SetAttr("collector", batch.Collector)
	sp.SetAttrInt("batch", records)
	if err := c.Ingest(ctx, batch); err != nil {
		evErr = err
		sp.SetError(err)
		c.logErr(err)
	}
}

// Ingest runs the classification pipeline on one parsed batch. Exposed
// for in-process pipelines and tests.
func (c *Classifier) Ingest(ctx context.Context, batch *obs.Batch) error {
	sp := c.a.Tracer().ChildFromContext(ctx, "classify.store")
	defer sp.End()
	stored, err := c.storeBatch(batch)
	if err != nil {
		sp.SetError(err)
		c.mu.Lock()
		c.stats.StoreErrors++
		c.mu.Unlock()
		c.mStoreErrors.Inc()
		return err
	}
	sp.SetAttrInt("records", stored)
	sp.End()
	c.mu.Lock()
	c.stats.Batches++
	c.stats.Records += uint64(stored)
	c.mu.Unlock()
	c.mBatches.Inc()
	c.mRecords.Add(uint64(stored))
	if stored == 0 {
		return nil
	}
	return c.notify(ctx, batch)
}

// storeBatch persists a batch's records, annotated with the ontology,
// and reports how many were stored. When the sink can take a whole
// batch it gets one AppendBatch call (one lock acquisition); otherwise
// it degrades to per-record Appends. Both paths annotate private copies
// so the caller's batch is never mutated.
// batchPool recycles the annotated-record scratch storeBatch hands to a
// BatchSink. maxPooledRecords caps what returns to the pool so one huge
// batch does not pin its backing array for the life of the process.
var batchPool = sync.Pool{New: func() any { return new(obs.Batch) }}

const maxPooledRecords = 4096

func (c *Classifier) storeBatch(batch *obs.Batch) (int, error) {
	if bs, ok := c.cfg.Store.(BatchSink); ok {
		// The annotated copy lives only for the AppendBatch call: every
		// sink copies records into its series under its own lock and
		// never retains the slice, so the scratch is pooled across
		// batches instead of allocated per batch.
		sb := batchPool.Get().(*obs.Batch)
		sb.Collector = batch.Collector
		sb.Records = append(sb.Records[:0], batch.Records...)
		if c.cfg.Ontology != nil {
			for i := range sb.Records {
				c.cfg.Ontology.Annotate(&sb.Records[i])
			}
		}
		err := bs.AppendBatch(sb)
		stored := len(sb.Records)
		sb.Collector = ""
		if cap(sb.Records) <= maxPooledRecords {
			sb.Records = sb.Records[:0]
			batchPool.Put(sb)
		}
		if err != nil {
			return 0, fmt.Errorf("classify: store batch from %s: %w", batch.Collector, err)
		}
		return stored, nil
	}
	stored := 0
	for i := range batch.Records {
		r := batch.Records[i]
		if c.cfg.Ontology != nil {
			c.cfg.Ontology.Annotate(&r)
		}
		if err := c.cfg.Store.Append(r); err != nil {
			return stored, fmt.Errorf("classify: store %s: %w", r.Key(), err)
		}
		stored++
	}
	return stored, nil
}

// notify tells the processor grid root that classified data is waiting
// (the FIPA ACL message of Figure 2).
func (c *Classifier) notify(ctx context.Context, batch *obs.Batch) error {
	notice := &Notice{
		Collector: batch.Collector,
		Clusters:  c.cfg.Strategy.Cluster(batch.Records, c.cfg.Ontology),
	}
	encode, lang := EncodeNotice, "json"
	if c.cfg.BinaryNotices {
		encode, lang = EncodeNoticeBinary, "binary"
	}
	content, err := encode(notice)
	if err != nil {
		return fmt.Errorf("classify: encode notice: %w", err)
	}
	msg := &acl.Message{
		Performative:   acl.Inform,
		Receivers:      []acl.AID{c.cfg.Processor},
		Content:        content,
		Language:       lang,
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: c.a.NewConversationID(),
	}
	sp := c.a.Tracer().ChildFromContext(ctx, "classify.notify")
	sp.SetAttrInt("clusters", len(notice.Clusters))
	sp.SetConversation(msg.ConversationID)
	sp.Stamp(msg)
	defer sp.End()
	if err := c.a.Send(ctx, msg); err != nil {
		sp.SetError(err)
		return fmt.Errorf("classify: notify processor: %w", err)
	}
	c.mu.Lock()
	c.stats.Notices++
	c.mu.Unlock()
	c.mNotices.Inc()
	return nil
}

func (c *Classifier) logErr(err error) {
	if c.cfg.ErrorLog != nil {
		c.cfg.ErrorLog(err)
	}
}
