package classify

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

type outbox struct {
	mu   sync.Mutex
	msgs []*acl.Message
}

func (o *outbox) send(_ context.Context, m *acl.Message) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.msgs = append(o.msgs, m.Clone())
	return nil
}

func (o *outbox) notices(t *testing.T) []*Notice {
	t.Helper()
	o.mu.Lock()
	defer o.mu.Unlock()
	var out []*Notice
	for _, m := range o.msgs {
		if m.Ontology != acl.OntologyGridManagement || m.Performative != acl.Inform {
			continue
		}
		n, err := DecodeNotice(m.Content)
		if err != nil {
			t.Fatalf("bad notice: %v", err)
		}
		out = append(out, n)
	}
	return out
}

func procAID() acl.AID { return acl.NewAID("pg-root", "site1") }

func newClassifier(t *testing.T, mod func(*Config)) (*Classifier, *store.Store, *outbox) {
	t.Helper()
	st := store.New(64)
	out := &outbox{}
	a := agent.New(acl.NewAID("classifier-1", "site1"), out.send)
	cfg := Config{Store: st, Processor: procAID(), Ontology: obs.NewOntology()}
	if mod != nil {
		mod(&cfg)
	}
	c, err := New(a, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c, st, out
}

func testBatch() *obs.Batch {
	mk := func(dev, metric string, step int, v float64) obs.Record {
		return obs.Record{Site: "site1", Device: dev, Class: "host", Metric: metric,
			Value: v, Step: step, Time: time.Unix(int64(step), 0).UTC()}
	}
	return &obs.Batch{
		Collector: "collector-1@site1",
		Records: []obs.Record{
			mk("h1", "cpu.util", 3, 90),
			mk("h1", "mem.free", 3, 512),
			mk("h2", "cpu.util", 4, 20),
			mk("h2", "disk.free", 4, 9000),
			mk("h2", "if.in.1", 4, 1234),
		},
	}
}

func TestConfigValidation(t *testing.T) {
	a := agent.New(acl.NewAID("c", "s"), (&outbox{}).send)
	if _, err := New(a, Config{Processor: procAID()}); err == nil {
		t.Error("missing store accepted")
	}
	if _, err := New(a, Config{Store: store.New(4)}); err == nil {
		t.Error("missing processor accepted")
	}
}

func TestIngestStoresAndIndexes(t *testing.T) {
	c, st, _ := newClassifier(t, nil)
	if err := c.Ingest(context.Background(), testBatch()); err != nil {
		t.Fatal(err)
	}
	if n, _ := st.Stats(); n != 5 {
		t.Fatalf("series = %d", n)
	}
	p, ok := st.Latest("site1/h1/cpu.util")
	if !ok || p.Value != 90 {
		t.Fatalf("stored point = %+v", p)
	}
	stats := c.Stats()
	if stats.Batches != 1 || stats.Records != 5 || stats.Notices != 1 {
		t.Fatalf("Stats = %+v", stats)
	}
}

func TestIngestNotifiesWithDeviceClusters(t *testing.T) {
	c, _, out := newClassifier(t, nil)
	c.Ingest(context.Background(), testBatch())
	notices := out.notices(t)
	if len(notices) != 1 {
		t.Fatalf("notices = %d", len(notices))
	}
	n := notices[0]
	if n.Collector != "collector-1@site1" || len(n.Clusters) != 2 {
		t.Fatalf("notice = %+v", n)
	}
	h1, h2 := n.Clusters[0], n.Clusters[1]
	if h1.Key != "site1/h1" || h1.Records != 2 || h1.MaxStep != 3 {
		t.Fatalf("h1 cluster = %+v", h1)
	}
	if h2.Key != "site1/h2" || h2.Records != 3 || h2.MaxStep != 4 {
		t.Fatalf("h2 cluster = %+v", h2)
	}
	// Categories come from the ontology.
	if len(h2.Categories) != 3 { // cpu, disk, traffic
		t.Fatalf("h2 categories = %v", h2.Categories)
	}
}

func TestHandleBatchOverACL(t *testing.T) {
	c, st, out := newClassifier(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Agent().Run(ctx)

	content, err := obs.MarshalBatch(testBatch())
	if err != nil {
		t.Fatal(err)
	}
	msg := &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("collector-1", "site1"),
		Receivers:    []acl.AID{c.Agent().ID()},
		Content:      content,
		Language:     "xml",
		Ontology:     acl.OntologyNetworkManagement,
	}
	if err := c.Agent().Deliver(msg); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for {
		if n, _ := st.Stats(); n == 5 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("batch never stored")
		case <-time.After(time.Millisecond):
		}
	}
	for len(out.notices(t)) == 0 {
		select {
		case <-deadline:
			t.Fatal("notice never sent")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestHandleGarbageBatch(t *testing.T) {
	c, _, out := newClassifier(t, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.Agent().Run(ctx)

	msg := &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("collector-1", "site1"),
		Receivers:    []acl.AID{c.Agent().ID()},
		Content:      []byte("<<<not xml"),
		Ontology:     acl.OntologyNetworkManagement,
	}
	c.Agent().Deliver(msg)

	deadline := time.After(5 * time.Second)
	for c.Stats().ParseErrors == 0 {
		select {
		case <-deadline:
			t.Fatal("parse error never counted")
		case <-time.After(time.Millisecond):
		}
	}
	// Collector gets not-understood.
	for {
		out.mu.Lock()
		var nu bool
		for _, m := range out.msgs {
			if m.Performative == acl.NotUnderstood {
				nu = true
			}
		}
		out.mu.Unlock()
		if nu {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no not-understood reply")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestIngestEmptyBatchNoNotice(t *testing.T) {
	c, _, out := newClassifier(t, nil)
	if err := c.Ingest(context.Background(), &obs.Batch{Collector: "c"}); err != nil {
		t.Fatal(err)
	}
	if len(out.notices(t)) != 0 {
		t.Fatal("empty batch produced a notice")
	}
}

type failingSink struct{ err error }

func (f failingSink) Append(obs.Record) error { return f.err }

func TestIngestStoreError(t *testing.T) {
	var logged []error
	c, _, _ := newClassifier(t, func(cfg *Config) {
		cfg.Store = failingSink{err: errors.New("disk full")}
		cfg.ErrorLog = func(err error) { logged = append(logged, err) }
	})
	if err := c.Ingest(context.Background(), testBatch()); err == nil {
		t.Fatal("store error swallowed")
	}
	if c.Stats().StoreErrors != 1 {
		t.Fatalf("Stats = %+v", c.Stats())
	}
}

func TestDeviceAffinityPartitionProperty(t *testing.T) {
	// Every record lands in exactly one cluster and per-cluster counts
	// sum to the batch size.
	b := testBatch()
	clusters := DeviceAffinity{}.Cluster(b.Records, obs.NewOntology())
	total := 0
	seen := map[string]bool{}
	for _, c := range clusters {
		total += c.Records
		if seen[c.Key] {
			t.Fatalf("duplicate cluster %s", c.Key)
		}
		seen[c.Key] = true
	}
	if total != len(b.Records) {
		t.Fatalf("cluster totals %d != %d records", total, len(b.Records))
	}
}

func TestRandomShardStrategy(t *testing.T) {
	b := testBatch()
	clusters := RandomShard{N: 2}.Cluster(b.Records, obs.NewOntology())
	if len(clusters) != 2 {
		t.Fatalf("shards = %d", len(clusters))
	}
	total := 0
	for _, c := range clusters {
		total += c.Records
	}
	if total != len(b.Records) {
		t.Fatalf("shard totals = %d", total)
	}
	// Degenerate N.
	one := RandomShard{N: 0}.Cluster(b.Records, nil)
	if len(one) != 1 || one[0].Records != len(b.Records) {
		t.Fatalf("N=0 shards = %+v", one)
	}
	if (RandomShard{}).Name() != "random-shard" || (DeviceAffinity{}).Name() != "device-affinity" {
		t.Fatal("strategy names wrong")
	}
}

func TestNoticeCodecErrors(t *testing.T) {
	if _, err := DecodeNotice([]byte("{bad")); err == nil {
		t.Fatal("corrupt notice accepted")
	}
}

func TestPartitionPropertyBothStrategies(t *testing.T) {
	// Every record lands in exactly one cluster under either strategy,
	// for arbitrary batches.
	f := func(seed int64, nDevices, nMetrics, shards uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		d := int(nDevices%12) + 1
		m := int(nMetrics%6) + 1
		var records []obs.Record
		for i := 0; i < d; i++ {
			for j := 0; j < m; j++ {
				records = append(records, obs.Record{
					Site:   "s",
					Device: fmt.Sprintf("dev-%d", i),
					Metric: fmt.Sprintf("metric.%d", j),
					Value:  rng.Float64(),
					Step:   rng.Intn(100),
				})
			}
		}
		for _, s := range []Strategy{DeviceAffinity{}, RandomShard{N: int(shards%8) + 1}} {
			clusters := s.Cluster(records, obs.NewOntology())
			total := 0
			for _, c := range clusters {
				total += c.Records
				if c.Records == 0 {
					return false // empty clusters are not emitted
				}
			}
			if total != len(records) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
