package classify

import (
	"encoding/json"
	"fmt"

	"agentgrid/internal/acl"
)

// noticeStrings interns the notice header vocabulary — collector names,
// cluster keys, sites, devices, classes, categories — which draws from
// the fleet's device inventory and so repeats on every notice.
var noticeStrings = acl.NewIntern(4096)

// DecodeNoticeInto parses a notice into the caller-owned n, reusing its
// Clusters and Categories capacity and interning the repeated strings.
// Every field is overwritten; consumers that retain a cluster's
// Categories past the call must copy the slice (the analyze root does).
// Accepts both encodings, like DecodeNotice; the JSON path zeroes the
// scratch first because json merges into existing fields.
func DecodeNoticeInto(data []byte, n *Notice) error {
	if len(data) > 0 && data[0] == noticeMagic {
		return decodeNoticeBinaryInto(data, n)
	}
	*n = Notice{}
	if err := json.Unmarshal(data, n); err != nil {
		return fmt.Errorf("classify: decode notice: %w", err)
	}
	return nil
}

// decodeNoticeBinaryInto is the Into twin of decodeNoticeBinary: same
// wire walk, same error positions, but element-wise reuse of the
// scratch instead of fresh allocations.
func decodeNoticeBinaryInto(data []byte, n *Notice) error {
	// Truncate up front (keeping capacity) so no failure path can leave
	// phantom clusters from a previous decode in the scratch.
	n.Clusters = n.Clusters[:0]
	if len(data) < 2 || data[0] != noticeMagic {
		return ErrNoticeEncoding
	}
	if data[1] != noticeVersion {
		return fmt.Errorf("classify: notice version %d not supported", data[1])
	}
	d := noticeDecoder{data: data, off: 2}
	n.Collector = noticeStrings.Intern(d.strBytes())
	nc := d.count(6)
	if cap(n.Clusters) >= nc {
		n.Clusters = n.Clusters[:nc]
	} else {
		n.Clusters = make([]Cluster, nc)
	}
	for i := 0; i < nc; i++ {
		c := &n.Clusters[i]
		c.Key = noticeStrings.Intern(d.strBytes())
		c.Site = noticeStrings.Intern(d.strBytes())
		c.Device = noticeStrings.Intern(d.strBytes())
		c.Class = noticeStrings.Intern(d.strBytes())
		ncat := d.count(1)
		switch {
		case cap(c.Categories) >= ncat && c.Categories != nil:
			c.Categories = c.Categories[:ncat]
		default:
			// make, not nil, even for zero categories: the JSON codec
			// round trips an empty Categories as [], and DecodeNotice
			// matches it, so the Into path does too.
			c.Categories = make([]string, ncat)
		}
		for j := 0; j < ncat; j++ {
			c.Categories[j] = noticeStrings.Intern(d.strBytes())
		}
		c.Records = int(d.varint())
		c.MaxStep = int(d.varint())
		if d.err != nil {
			n.Clusters = n.Clusters[:0]
			return fmt.Errorf("classify: decode notice: %w", d.err)
		}
	}
	if d.err != nil {
		n.Clusters = n.Clusters[:0]
		return fmt.Errorf("classify: decode notice: %w", d.err)
	}
	if d.off != len(data) {
		n.Clusters = n.Clusters[:0]
		return fmt.Errorf("classify: decode notice: %d trailing bytes", len(data)-d.off)
	}
	return nil
}

// strBytes reads a length-prefixed string without copying it out of the
// payload; the result aliases d.data.
func (d *noticeDecoder) strBytes() []byte {
	n := d.count(1)
	if d.err != nil || n == 0 {
		return nil
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b
}
