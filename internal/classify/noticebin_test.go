package classify

import (
	"context"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/obs"
)

// pipelineNotice builds a notice the way the classifier does: through
// the clustering strategy, so both codecs see production-shaped data.
func pipelineNotice(t *testing.T) *Notice {
	t.Helper()
	batch := testBatch()
	return &Notice{
		Collector: batch.Collector,
		Clusters:  DeviceAffinity{}.Cluster(batch.Records, obs.NewOntology()),
	}
}

func TestNoticeBinaryRoundTrip(t *testing.T) {
	n := pipelineNotice(t)
	bin, err := EncodeNoticeBinary(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNotice(bin)
	if err != nil {
		t.Fatal(err)
	}
	// The binary round trip must land exactly where the JSON round
	// trip does — one truth for consumers regardless of producer.
	jf, err := EncodeNotice(n)
	if err != nil {
		t.Fatal(err)
	}
	viaJSON, err := DecodeNotice(jf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, viaJSON) {
		t.Fatalf("codecs diverge:\nbinary: %+v\njson:   %+v", got, viaJSON)
	}
	if len(bin) >= len(jf) {
		t.Errorf("binary notice (%d bytes) not smaller than JSON (%d bytes)", len(bin), len(jf))
	}
}

func TestNoticeBinaryEmptyClusters(t *testing.T) {
	n := &Notice{Collector: "c@site1"}
	bin, err := EncodeNoticeBinary(n)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeNotice(bin)
	if err != nil {
		t.Fatal(err)
	}
	if got.Collector != "c@site1" || got.Clusters != nil {
		t.Fatalf("decoded = %+v", got)
	}
}

func TestNoticeBinaryRejectsHostile(t *testing.T) {
	valid, err := EncodeNoticeBinary(pipelineNotice(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":            {},
		"magic only":       {noticeMagic},
		"bad version":      {noticeMagic, 99},
		"truncated":        valid[:len(valid)/2],
		"trailing bytes":   append(append([]byte{}, valid...), 0),
		"hostile clusters": {noticeMagic, noticeVersion, 1, 'c', 0xff, 0xff, 0xff, 0xff, 0x0f},
		"hostile cats": {noticeMagic, noticeVersion, 1, 'c', 1,
			1, 'k', 0, 0, 0, 0xff, 0xff, 0xff, 0x7f},
	}
	for name, data := range cases {
		if _, err := DecodeNotice(data); err == nil {
			t.Errorf("%s: hostile notice accepted", name)
		}
	}
}

func TestDecodeNoticeDispatch(t *testing.T) {
	// A consumer sees JSON from old classifiers and binary from new
	// ones on the same code path.
	n := pipelineNotice(t)
	for _, enc := range []func(*Notice) ([]byte, error){EncodeNotice, EncodeNoticeBinary} {
		data, err := enc(n)
		if err != nil {
			t.Fatal(err)
		}
		got, err := DecodeNotice(data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Collector != n.Collector || len(got.Clusters) != len(n.Clusters) {
			t.Fatalf("decoded = %+v", got)
		}
	}
}

func TestBinaryNoticesEndToEnd(t *testing.T) {
	// A classifier configured for binary notices emits content the
	// standard DecodeNotice path (which outbox.notices uses) parses.
	c, _, out := newClassifier(t, func(cfg *Config) { cfg.BinaryNotices = true })
	if err := c.Ingest(context.Background(), testBatch()); err != nil {
		t.Fatal(err)
	}
	out.mu.Lock()
	var lang string
	var content []byte
	for _, m := range out.msgs {
		if m.Ontology == acl.OntologyGridManagement {
			lang, content = m.Language, m.Content
		}
	}
	out.mu.Unlock()
	if lang != "binary" {
		t.Fatalf("notice language = %q, want binary", lang)
	}
	if len(content) == 0 || content[0] != noticeMagic {
		t.Fatalf("notice content is not binary: % x", content[:min(len(content), 4)])
	}
	notices := out.notices(t)
	if len(notices) != 1 || len(notices[0].Clusters) != 2 {
		t.Fatalf("notices = %+v", notices)
	}
}

// batchRecorder records which sink methods the classifier uses.
type batchRecorder struct {
	appends int
	batches []*obs.Batch
}

func (r *batchRecorder) Append(obs.Record) error { r.appends++; return nil }
func (r *batchRecorder) AppendBatch(b *obs.Batch) error {
	// The batch is a pooled scratch valid only for this call; retain a
	// copy, like the real sinks copy into their series.
	r.batches = append(r.batches, &obs.Batch{
		Collector: b.Collector,
		Records:   append([]obs.Record(nil), b.Records...),
	})
	return nil
}

func TestIngestUsesBatchSink(t *testing.T) {
	rec := &batchRecorder{}
	c, _, _ := newClassifier(t, func(cfg *Config) { cfg.Store = rec })
	batch := testBatch()
	if err := c.Ingest(context.Background(), batch); err != nil {
		t.Fatal(err)
	}
	if rec.appends != 0 || len(rec.batches) != 1 {
		t.Fatalf("sink saw %d Appends and %d batches, want 0 and 1", rec.appends, len(rec.batches))
	}
	got := rec.batches[0]
	if len(got.Records) != len(batch.Records) {
		t.Fatalf("batch sink got %d records", len(got.Records))
	}
	// The stored records are annotated copies: the ontology filled in
	// units, and the caller's batch was not touched.
	if got.Records[0].Unit == "" {
		t.Error("batch sink records not annotated")
	}
	for i := range batch.Records {
		if batch.Records[i].Unit != "" {
			t.Fatalf("caller's record %d mutated: %+v", i, batch.Records[i])
		}
	}
	if stats := c.Stats(); stats.Records != uint64(len(batch.Records)) {
		t.Fatalf("stats = %+v", stats)
	}
}

func TestIngestBatchSinkError(t *testing.T) {
	c, _, out := newClassifier(t, func(cfg *Config) {
		cfg.Store = errBatchSink{}
	})
	err := c.Ingest(context.Background(), testBatch())
	if err == nil || !strings.Contains(err.Error(), "store batch") {
		t.Fatalf("Ingest = %v", err)
	}
	if stats := c.Stats(); stats.StoreErrors != 1 || stats.Batches != 0 {
		t.Fatalf("stats = %+v", stats)
	}
	if len(out.notices(t)) != 0 {
		t.Fatal("failed batch still produced a notice")
	}
}

var errSinkBoom = errors.New("sink boom")

type errBatchSink struct{}

func (errBatchSink) Append(obs.Record) error      { return errSinkBoom }
func (errBatchSink) AppendBatch(*obs.Batch) error { return errSinkBoom }

// BenchmarkNoticeWire measures the grid's most frequent message — the
// classifier's "data present" notice — as a full wire frame: notice
// encode, ACL envelope, frame encode, frame decode, notice decode.
// json is the ACL1+JSON-notice baseline; binary is ACL2+binary-notice.
// frame-bytes reports the on-wire size.
func BenchmarkNoticeWire(b *testing.B) {
	// Four device clusters — the representative site-sized notice the
	// classifier emits per collector batch.
	mk := func(dev, class, metric string, step int, v float64) obs.Record {
		return obs.Record{Site: "site1", Device: dev, Class: class, Metric: metric,
			Value: v, Step: step, Time: time.Unix(int64(step), 0).UTC()}
	}
	batch := &obs.Batch{
		Collector: "cg-3@site1",
		Records: []obs.Record{
			mk("host-1", "host", "cpu.util", 480, 90),
			mk("host-1", "host", "mem.free", 480, 512),
			mk("host-1", "host", "if.in.1", 480, 1234),
			mk("host-2", "host", "cpu.util", 480, 20),
			mk("host-2", "host", "mem.free", 480, 9000),
			mk("router-1", "router", "if.in.1", 480, 777),
			mk("router-1", "router", "if.out.1", 480, 778),
			mk("switch-1", "switch", "if.in.2", 480, 1),
		},
	}
	notice := &Notice{
		Collector: batch.Collector,
		Clusters:  DeviceAffinity{}.Cluster(batch.Records, obs.NewOntology()),
	}
	run := func(b *testing.B, f acl.Format, enc func(*Notice) ([]byte, error), lang string) {
		content, err := enc(notice)
		if err != nil {
			b.Fatal(err)
		}
		m := &acl.Message{
			Performative:   acl.Inform,
			Sender:         acl.NewAID("clg-1", "site1", "tcp://10.0.0.2:7001"),
			Receivers:      []acl.AID{acl.NewAID("pg-root", "site1", "tcp://10.0.0.3:7001")},
			Content:        content,
			Language:       lang,
			Ontology:       acl.OntologyGridManagement,
			Protocol:       acl.ProtocolRequest,
			ConversationID: "clg-1-4242",
			Trace:          &acl.TraceContext{TraceID: "a1b2c3d4e5f60718", SpanID: "0011223344556677"},
		}
		probe, err := acl.AppendFrame(nil, m, f)
		if err != nil {
			b.Fatal(err)
		}
		buf := make([]byte, 0, 4096)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			frame, err := acl.AppendFrame(buf[:0], m, f)
			if err != nil {
				b.Fatal(err)
			}
			got, err := acl.Unmarshal(frame)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := DecodeNotice(got.Content); err != nil {
				b.Fatal(err)
			}
			buf = frame[:0]
		}
		b.ReportMetric(float64(len(probe)), "frame-bytes")
	}
	b.Run("json", func(b *testing.B) { run(b, acl.FormatJSON, EncodeNotice, "json") })
	b.Run("binary", func(b *testing.B) { run(b, acl.FormatBinary, EncodeNoticeBinary, "binary") })
}
