package classify

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// Binary notice encoding. The JSON notice repeats every field name in
// every cluster, which dominates the bytes of the grid's most frequent
// message; the binary form keeps only the values. Layout, all integers
// varint and all strings uvarint-length-prefixed:
//
//	u8      magic 'N' (never '{', so DecodeNotice dispatches on it)
//	u8      version (1)
//	string  collector
//	uvarint cluster count
//	per cluster:
//	  string  key, site, device, class
//	  uvarint category count, then that many strings
//	  varint  records
//	  varint  max step
const (
	noticeMagic   = 'N'
	noticeVersion = 1
)

// ErrNoticeEncoding reports bytes that are neither a JSON nor a binary
// notice.
var ErrNoticeEncoding = errors.New("classify: unrecognized notice encoding")

// EncodeNoticeBinary serializes a notice into the compact binary form.
// DecodeNotice accepts both forms, so producers can switch freely.
func EncodeNoticeBinary(n *Notice) ([]byte, error) {
	size := 2 + 5 + len(n.Collector)
	for i := range n.Clusters {
		c := &n.Clusters[i]
		size += len(c.Key) + len(c.Site) + len(c.Device) + len(c.Class) + 30
		for _, cat := range c.Categories {
			size += len(cat) + 5
		}
	}
	out := make([]byte, 0, size)
	out = append(out, noticeMagic, noticeVersion)
	out = appendNoticeString(out, n.Collector)
	out = binary.AppendUvarint(out, uint64(len(n.Clusters)))
	for i := range n.Clusters {
		c := &n.Clusters[i]
		out = appendNoticeString(out, c.Key)
		out = appendNoticeString(out, c.Site)
		out = appendNoticeString(out, c.Device)
		out = appendNoticeString(out, c.Class)
		out = binary.AppendUvarint(out, uint64(len(c.Categories)))
		for _, cat := range c.Categories {
			out = appendNoticeString(out, cat)
		}
		out = binary.AppendVarint(out, int64(c.Records))
		out = binary.AppendVarint(out, int64(c.MaxStep))
	}
	return out, nil
}

func appendNoticeString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

// decodeNoticeBinary parses the binary form. Counts are checked against
// the remaining bytes before any allocation sized by them.
func decodeNoticeBinary(data []byte) (*Notice, error) {
	if len(data) < 2 || data[0] != noticeMagic {
		return nil, ErrNoticeEncoding
	}
	if data[1] != noticeVersion {
		return nil, fmt.Errorf("classify: notice version %d not supported", data[1])
	}
	d := noticeDecoder{data: data, off: 2}
	n := &Notice{Collector: d.str()}
	// A serialized cluster is at least 6 bytes (four empty strings, a
	// category count and two varints).
	nc := d.count(6)
	if nc > 0 {
		n.Clusters = make([]Cluster, 0, nc)
	}
	for i := 0; i < nc; i++ {
		c := Cluster{
			Key:    d.str(),
			Site:   d.str(),
			Device: d.str(),
			Class:  d.str(),
		}
		ncat := d.count(1)
		if ncat > 0 {
			c.Categories = make([]string, 0, ncat)
		} else if d.err == nil {
			// JSON round trips an empty Categories slice as [], never
			// null; match it so both codecs decode identically.
			c.Categories = []string{}
		}
		for j := 0; j < ncat; j++ {
			c.Categories = append(c.Categories, d.str())
		}
		c.Records = int(d.varint())
		c.MaxStep = int(d.varint())
		if d.err != nil {
			return nil, fmt.Errorf("classify: decode notice: %w", d.err)
		}
		n.Clusters = append(n.Clusters, c)
	}
	if d.err != nil {
		return nil, fmt.Errorf("classify: decode notice: %w", d.err)
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("classify: decode notice: %d trailing bytes", len(data)-d.off)
	}
	return n, nil
}

// noticeDecoder is a bounds-checked cursor with a latched error, the
// same shape as the ACL binary decoder.
type noticeDecoder struct {
	data []byte
	off  int
	err  error
}

var errNoticeTruncated = errors.New("truncated")

func (d *noticeDecoder) fail() {
	if d.err == nil {
		d.err = errNoticeTruncated
	}
}

func (d *noticeDecoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.data[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

func (d *noticeDecoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.data[d.off:])
	if n <= 0 {
		d.fail()
		return 0
	}
	d.off += n
	return v
}

// count reads an element count and rejects values that could not fit in
// the remaining bytes given a minimum encoded size per element, so a
// hostile count cannot drive a huge allocation.
func (d *noticeDecoder) count(minSize int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(len(d.data)-d.off)/uint64(minSize) {
		d.fail()
		return 0
	}
	return int(v)
}

func (d *noticeDecoder) str() string {
	n := int(d.uvarint())
	if d.err != nil {
		return ""
	}
	if n < 0 || n > len(d.data)-d.off {
		d.fail()
		return ""
	}
	s := string(d.data[d.off : d.off+n])
	d.off += n
	return s
}
