// Package topology is the grid's declarative control plane: a
// stdlib-only spec format describing a whole management-grid deployment
// — sites, simulated device fleets, container replica counts, wire
// settings and an optional chaos schedule — plus the lifecycle to make
// it real: parse, validate (all errors enumerated), deploy onto the
// existing core/platform APIs, inspect via Status, and tear down with
// an ordered idempotent Destroy.
//
// Every experiment that used to be a bespoke example main.go becomes a
// checked-in .topo file under examples/specs/, deployed with
// `gridctl deploy` against `agentgridd -spec` and watched live at
// GET /topology (JSON, text, or the html/template view).
package topology

import (
	"fmt"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

// Spec is one validated topology: a single management grid (the
// paper's Figure 2) monitoring one or more sites of simulated devices.
type Spec struct {
	// Name identifies the deployment in status output.
	Name string `json:"name"`
	// Grid holds the container-replica and wire settings.
	Grid GridSpec `json:"grid"`
	// Sites are the managed domains, in spec order. The first site
	// names the grid's administrative domain.
	Sites []SiteSpec `json:"sites"`
	// Rules is rule-DSL source loaded into every analysis worker.
	Rules string `json:"rules,omitempty"`
	// LocalRules is rule-DSL source for collector-side pre-analysis.
	LocalRules string `json:"local_rules,omitempty"`
	// Chaos is the optional fault schedule applied after deploy.
	Chaos []ChaosEntry `json:"chaos,omitempty"`
}

// GridSpec sets the management grid's shape: replica counts per
// container role and the wire-path knobs from the fast-path PRs.
type GridSpec struct {
	// Collectors is the collector-container replica count.
	Collectors int `json:"collectors"`
	// Analyzers is the processor (analysis worker) replica count.
	Analyzers int `json:"analyzers"`
	// Classifiers is the classifier partition count. With N > 1 the
	// grid deploys N classifier containers (clg-1..clg-N), each owning
	// the site/device-hash partition of the device space.
	Classifiers int `json:"classifiers"`
	// Reporters is the interface-grid replica count (exactly 1 today).
	Reporters int `json:"reporters"`
	// StoreShards is each store partition's lock-stripe count (0 means
	// the store default, rounded to a power of two).
	StoreShards int `json:"store_shards,omitempty"`
	// Scheduler is the loadbalance strategy ("capability" default).
	Scheduler string `json:"scheduler,omitempty"`
	// Negotiated places analysis via contract-net bidding.
	Negotiated bool `json:"negotiated,omitempty"`
	// BidWindow bounds contract-net proposal collection.
	BidWindow time.Duration `json:"bid_window,omitempty"`
	// Wire selects the TCP frame encoding: "binary" (default) or
	// "json". Only meaningful with TCP: true.
	Wire string `json:"wire,omitempty"`
	// FlushWindow enables TCP write coalescing (0 = flush per frame).
	FlushWindow time.Duration `json:"flush_window,omitempty"`
	// Community is the SNMP community used for collection.
	Community string `json:"community,omitempty"`
	// TCP binds containers on loopback TCP instead of the in-process
	// network, so external worker nodes can join.
	TCP bool `json:"tcp,omitempty"`
}

// SiteSpec describes one managed domain: a deterministic simulated
// device fleet and how it is polled.
type SiteSpec struct {
	// Name is the administrative domain name.
	Name string `json:"name"`
	// Hosts, Routers, Switches count device kinds.
	Hosts    int `json:"hosts"`
	Routers  int `json:"routers,omitempty"`
	Switches int `json:"switches,omitempty"`
	// RouterIfs is interfaces per router (device default when 0).
	RouterIfs int `json:"router_ifs,omitempty"`
	// SwitchPorts is ports per switch (device default when 0).
	SwitchPorts int `json:"switch_ports,omitempty"`
	// Seed derives per-device simulation seeds.
	Seed int64 `json:"seed"`
	// Poll is the collection interval for every device goal.
	Poll time.Duration `json:"poll"`
	// AdvanceEvery, when positive, advances the site's simulated
	// devices one step on this period, so a deployed spec evolves on
	// its own. Zero means the fleet only moves when driven explicitly
	// (tests, benchmarks).
	AdvanceEvery time.Duration `json:"advance_every,omitempty"`
}

// FleetSpec converts the site to the workload package's fleet spec.
func (s SiteSpec) FleetSpec() workload.FleetSpec {
	return workload.FleetSpec{
		Site: s.Name, Hosts: s.Hosts, Routers: s.Routers,
		Switches: s.Switches, RouterIfs: s.RouterIfs,
		SwitchPorts: s.SwitchPorts, Seed: s.Seed,
	}
}

// DeviceNames lists the device names the site's fleet will carry, in
// fleet order — the namespace chaos device targets resolve against.
func (s SiteSpec) DeviceNames() []string {
	var out []string
	for i := 0; i < s.Hosts; i++ {
		out = append(out, fmt.Sprintf("host-%02d", i+1))
	}
	for i := 0; i < s.Routers; i++ {
		out = append(out, fmt.Sprintf("router-%02d", i+1))
	}
	for i := 0; i < s.Switches; i++ {
		out = append(out, fmt.Sprintf("switch-%02d", i+1))
	}
	return out
}

// Chaos actions understood by the deploy-time fault runner.
const (
	// ChaosDevice injects a device fault (Kind is a device.Fault).
	ChaosDevice = "device"
	// ChaosClear clears a previously injected device fault.
	ChaosClear = "clear"
	// ChaosDetach takes a container off the message network.
	ChaosDetach = "detach"
	// ChaosReattach puts a detached container back on the network;
	// its heartbeat re-registers it with the directory.
	ChaosReattach = "reattach"
	// ChaosDrop installs probabilistic loss on all traffic to or from
	// a container (Percent, seeded by the entry's Seed).
	ChaosDrop = "drop"
	// ChaosHeal clears every installed network fault plan.
	ChaosHeal = "heal"
)

// ChaosEntry is one scheduled fault: at After past deploy, apply
// Action to Target.
type ChaosEntry struct {
	// Name labels the entry in errors and status output.
	Name string `json:"name"`
	// After is the delay from deploy to application.
	After time.Duration `json:"after"`
	// Action is one of the Chaos* constants.
	Action string `json:"action"`
	// Target is "site/device" for device and clear actions, a
	// container name (cg-1, clg, clg-2, pg-root, pg-1, ig) for detach,
	// reattach and drop, and empty for heal.
	Target string `json:"target,omitempty"`
	// Kind is the device fault for device/clear actions
	// (cpu-pegged, disk-full, mem-leak, link-down, proc-storm).
	Kind string `json:"kind,omitempty"`
	// Percent is the loss probability for drop, in (0, 100].
	Percent float64 `json:"percent,omitempty"`
	// Seed seeds the drop action's probabilistic plan.
	Seed int64 `json:"seed,omitempty"`
}

// deviceFaults are the injectable device failure modes, by spec name.
var deviceFaults = map[string]device.Fault{
	string(device.FaultCPUPegged): device.FaultCPUPegged,
	string(device.FaultDiskFull):  device.FaultDiskFull,
	string(device.FaultMemLeak):   device.FaultMemLeak,
	string(device.FaultLinkDown):  device.FaultLinkDown,
	string(device.FaultProcStorm): device.FaultProcStorm,
}

// NewSpec returns a named spec with every grid default filled in —
// the same defaults the hand-built examples rely on (core.Config's
// withDefaults), so a minimal spec behaves identically. Parse starts
// from these defaults; explicit keys overwrite them, which is how an
// explicit `collectors: 0` stays observable as a validation error
// instead of being silently re-defaulted.
func NewSpec(name string) *Spec {
	return &Spec{
		Name: name,
		Grid: GridSpec{
			Collectors:  3,
			Analyzers:   2,
			Classifiers: 1,
			Reporters:   1,
			Scheduler:   "capability",
			Community:   "public",
			Wire:        "binary",
		},
	}
}

// newSite returns a site with per-site defaults applied.
func newSite(name string) SiteSpec {
	return SiteSpec{Name: name, Poll: time.Second}
}

// ContainerNames enumerates the container names the spec deploys, in
// grid assembly order — the namespace chaos container targets resolve
// against, and the census Status reports.
func (s *Spec) ContainerNames() []string {
	out := []string{"ig", "pg-root"}
	for i := 0; i < s.Grid.Analyzers; i++ {
		out = append(out, fmt.Sprintf("pg-%d", i+1))
	}
	// A single classifier keeps the historical "clg" name; partitioned
	// grids number them clg-1..clg-N (matching core's naming).
	if s.Grid.Classifiers <= 1 {
		out = append(out, "clg")
	} else {
		for i := 0; i < s.Grid.Classifiers; i++ {
			out = append(out, fmt.Sprintf("clg-%d", i+1))
		}
	}
	for i := 0; i < s.Grid.Collectors; i++ {
		out = append(out, fmt.Sprintf("cg-%d", i+1))
	}
	return out
}
