package topology

import (
	"bytes"
	"html/template"
)

// The live topology view: one self-refreshing html/template page over
// the status snapshot — containers with measured load, site fleets,
// health checks and the alert stream. Deliberately dependency-free
// (no scripts beyond the meta refresh) so it renders anywhere.
var viewTmpl = template.Must(template.New("topology").Funcs(template.FuncMap{
	// loadWidth scales a measured load (0..1+) to a bar width in px,
	// capped so a pathological value cannot blow up the layout.
	"loadWidth": func(load float64) float64 {
		if load < 0 {
			return 0
		}
		if load > 1.5 {
			load = 1.5
		}
		return load * 80
	},
}).Parse(`<!DOCTYPE html>
<html>
<head>
<meta charset="utf-8">
<meta http-equiv="refresh" content="2">
<title>topology: {{.Name}}</title>
<style>
body { font-family: ui-monospace, Menlo, Consolas, monospace; margin: 2em; background: #fbfbf9; color: #222; }
h1 { font-size: 1.2em; } h2 { font-size: 1em; margin-top: 1.4em; }
table { border-collapse: collapse; }
th, td { text-align: left; padding: 0.25em 0.9em 0.25em 0; border-bottom: 1px solid #ddd; }
.ok { color: #1a7f37; } .bad { color: #b42318; }
.load { display: inline-block; height: 0.7em; background: #4a7dbd; vertical-align: baseline; }
.muted { color: #888; }
</style>
</head>
<body>
<h1>topology <strong>{{.Name}}</strong> — {{.State}}{{if .Healthy}} <span class="ok">healthy</span>{{else}} <span class="bad">degraded</span>{{end}}</h1>
<p class="muted">site {{.Site}} · deployed {{.DeployedAt.Format "2006-01-02T15:04:05Z07:00"}} · store {{.StoreSeries}} series / {{.StoreAppends}} appends · directory {{.DirectoryEntries}} entries</p>

<h2>containers</h2>
<table>
<tr><th>name</th><th>role</th><th>addr</th><th>agents</th><th>measured load</th><th>mailbox</th></tr>
{{range .Containers}}
<tr>
<td>{{.Name}}</td>
<td>{{.Role}}</td>
<td>{{if .Addr}}{{.Addr}}{{else}}<span class="bad">detached</span>{{end}}</td>
<td>{{len .Agents}}</td>
<td><span class="load" style="width: {{printf "%.0f" (loadWidth .MeasuredLoad)}}px"></span> {{printf "%.2f" .MeasuredLoad}}</td>
<td>{{.MailboxDepth}}</td>
</tr>
{{end}}
</table>

<h2>sites</h2>
<table>
<tr><th>site</th><th>devices</th><th>poll</th><th>sim step</th><th>drive</th></tr>
{{range .Sites}}
<tr><td>{{.Name}}</td><td>{{.Devices}}</td><td>{{.Poll}}</td><td>{{.Step}}</td><td>{{if .Advanced}}self-advancing{{else}}external{{end}}</td></tr>
{{end}}
</table>

<h2>health</h2>
<table>
{{range .Health}}
<tr><td>{{.Name}}</td><td>{{if .Healthy}}<span class="ok">ok</span>{{else}}<span class="bad">{{.Detail}}</span>{{end}}</td></tr>
{{end}}
</table>

<h2>alerts <span class="muted">({{.AlertCount}} total, newest first)</span></h2>
<table>
{{range .Alerts}}
<tr><td>[{{.Severity}}]</td><td>L{{.Level}}</td><td>{{.Site}}{{if .Device}}/{{.Device}}{{end}}</td><td>{{.Rule}}</td><td>{{.Message}}</td></tr>
{{else}}
<tr><td class="muted">none yet</td></tr>
{{end}}
</table>

{{if .Faults}}
<h2>chaos applied</h2>
<table>
{{range .Faults}}
<tr><td>{{.Name}}</td><td>{{.Action}}</td><td>{{.Target}}</td><td>{{.At.Format "15:04:05"}}</td><td class="bad">{{.Error}}</td></tr>
{{end}}
</table>
{{end}}
</body>
</html>
`))

// RenderHTML renders the live view for a status snapshot.
func RenderHTML(st *Status) ([]byte, error) {
	var buf bytes.Buffer
	if err := viewTmpl.Execute(&buf, st); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
