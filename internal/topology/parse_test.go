package topology

import (
	"strings"
	"testing"
	"time"
)

func TestParseFullSpec(t *testing.T) {
	spec, err := Parse(`
# full-surface spec
name: everything

grid:
  collectors: 4
  analyzers: 3
  classifiers: 1
  reporters: 1
  scheduler: least-loaded
  negotiated: true
  bid_window: 250ms
  wire: json
  flush_window: 2ms
  community: private
  tcp: false

site east:
  hosts: 2
  routers: 1
  switches: 1
  router_ifs: 4
  switch_ports: 8
  seed: 7
  poll: 500ms
  advance_every: 100ms

site west:
  hosts: 1
  seed: 9

rules: |
  rule "hot-cpu" level 1 category cpu severity critical {
      when latest(cpu.util) > 90
      then alert "CPU above 90% on {device}"
  }

local_rules: |
  rule "edge" level 1 category cpu {
      when latest(cpu.util) > 99
      then alert "edge {device}"
  }

chaos:
  fault peg:
    after: 1s
    action: device
    target: east/host-01
    kind: cpu-pegged
  fault lossy:
    after: 2s
    action: drop
    target: cg-1
    percent: 25
    seed: 3
`)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Name != "everything" {
		t.Errorf("name = %q", spec.Name)
	}
	g := spec.Grid
	if g.Collectors != 4 || g.Analyzers != 3 || g.Classifiers != 1 || g.Reporters != 1 {
		t.Errorf("replicas = %+v", g)
	}
	if g.Scheduler != "least-loaded" || !g.Negotiated || g.BidWindow != 250*time.Millisecond {
		t.Errorf("scheduling = %+v", g)
	}
	if g.Wire != "json" || g.FlushWindow != 2*time.Millisecond || g.Community != "private" || g.TCP {
		t.Errorf("wire = %+v", g)
	}
	if len(spec.Sites) != 2 {
		t.Fatalf("sites = %d", len(spec.Sites))
	}
	east := spec.Sites[0]
	if east.Name != "east" || east.Hosts != 2 || east.Routers != 1 || east.Switches != 1 {
		t.Errorf("east = %+v", east)
	}
	if east.RouterIfs != 4 || east.SwitchPorts != 8 || east.Seed != 7 ||
		east.Poll != 500*time.Millisecond || east.AdvanceEvery != 100*time.Millisecond {
		t.Errorf("east detail = %+v", east)
	}
	if spec.Sites[1].Name != "west" || spec.Sites[1].Poll != time.Second {
		t.Errorf("west should keep the default poll: %+v", spec.Sites[1])
	}
	if !strings.Contains(spec.Rules, `rule "hot-cpu"`) || !strings.Contains(spec.Rules, "    when latest") {
		t.Errorf("rules literal lost structure:\n%s", spec.Rules)
	}
	if !strings.Contains(spec.LocalRules, `rule "edge"`) {
		t.Errorf("local_rules = %q", spec.LocalRules)
	}
	if len(spec.Chaos) != 2 {
		t.Fatalf("chaos = %+v", spec.Chaos)
	}
	peg := spec.Chaos[0]
	if peg.Name != "peg" || peg.After != time.Second || peg.Action != ChaosDevice ||
		peg.Target != "east/host-01" || peg.Kind != "cpu-pegged" {
		t.Errorf("peg = %+v", peg)
	}
	lossy := spec.Chaos[1]
	if lossy.Name != "lossy" || lossy.Action != ChaosDrop || lossy.Percent != 25 || lossy.Seed != 3 {
		t.Errorf("lossy = %+v", lossy)
	}
}

func TestParseDefaults(t *testing.T) {
	spec, err := Parse("name: tiny\nsite s1:\n  hosts: 1\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	g := spec.Grid
	if g.Collectors != 3 || g.Analyzers != 2 || g.Classifiers != 1 || g.Reporters != 1 {
		t.Errorf("default replicas = %+v", g)
	}
	if g.Scheduler != "capability" || g.Community != "public" || g.Wire != "binary" {
		t.Errorf("default knobs = %+v", g)
	}
	if spec.Sites[0].Poll != time.Second {
		t.Errorf("default poll = %v", spec.Sites[0].Poll)
	}
}

// An explicit zero must survive parsing so validation can flag it —
// defaults only fill keys the spec never mentions.
func TestParseExplicitZeroSurvives(t *testing.T) {
	spec, err := Parse("name: z\ngrid:\n  collectors: 0\nsite s1:\n  hosts: 1\n")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if spec.Grid.Collectors != 0 {
		t.Fatalf("explicit collectors: 0 was re-defaulted to %d", spec.Grid.Collectors)
	}
	if err := spec.Validate(); err == nil || !strings.Contains(err.Error(), "zero replicas") {
		t.Fatalf("Validate should flag zero replicas, got %v", err)
	}
}

// The parser reports every mistake in one pass, not just the first.
func TestParseCollectsAllErrors(t *testing.T) {
	_, err := Parse(`name: broken
grid:
  collectors: many
  nonsense: 1
site s1:
  hosts: 1
bogus-line-without-colon
rules: not-a-literal
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("want ErrorList, got %T", err)
	}
	if len(list) < 4 {
		t.Fatalf("want at least 4 distinct errors, got %d:\n%v", len(list), err)
	}
	for _, want := range []string{
		"not an integer", "unknown grid key", "expected 'key: value'", "expected a literal block",
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing %q in:\n%v", want, err)
		}
	}
	// Errors carry their line numbers.
	if !strings.Contains(err.Error(), "spec line 3") {
		t.Errorf("errors should be line-tagged:\n%v", err)
	}
}

func TestParseRejectsTabs(t *testing.T) {
	_, err := Parse("name: t\ngrid:\n\tcollectors: 1\n")
	if err == nil || !strings.Contains(err.Error(), "tab") {
		t.Fatalf("want tab error, got %v", err)
	}
}

func TestParseUnknownTopLevelKey(t *testing.T) {
	_, err := Parse("name: t\nflavor: vanilla\nsite s1:\n  hosts: 1\n")
	if err == nil || !strings.Contains(err.Error(), `unknown key "flavor"`) {
		t.Fatalf("want unknown-key error, got %v", err)
	}
}

func TestParseChaosShape(t *testing.T) {
	_, err := Parse(`name: c
site s1:
  hosts: 1
chaos:
  notafault: 1
  fault ok:
    after: 1s
    action: heal
    bogus: 2
`)
	if err == nil {
		t.Fatal("expected errors")
	}
	for _, want := range []string{"chaos entries are 'fault <name>:'", `unknown fault key "bogus"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing %q in:\n%v", want, err)
		}
	}
}

// The checked-in example specs must parse, validate and carry the
// shapes their hand-built example twins use.
func TestParseExampleSpecs(t *testing.T) {
	for _, tc := range []struct {
		file             string
		name, site       string
		hosts, analyzers int
	}{
		{"../../examples/specs/quickstart.topo", "quickstart", "site1", 1, 2},
		{"../../examples/specs/datacenter.topo", "datacenter", "farm", 60, 4},
	} {
		spec, err := Load(readFile(t, tc.file))
		if err != nil {
			t.Fatalf("%s: %v", tc.file, err)
		}
		if spec.Name != tc.name || spec.Sites[0].Name != tc.site ||
			spec.Sites[0].Hosts != tc.hosts || spec.Grid.Analyzers != tc.analyzers {
			t.Errorf("%s parsed to %+v", tc.file, spec)
		}
		if spec.Rules == "" {
			t.Errorf("%s: no rules", tc.file)
		}
	}
}
