package topology

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"agentgrid/internal/rules"
	"agentgrid/internal/telemetry"
)

// Status is the deployment's census: what is running, how loaded it
// measures itself (the PR 4 telemetry-derived load), whether it is
// healthy, and what it has concluded. Served as JSON and text at
// GET /topology and rendered by the html/template live view.
type Status struct {
	Name       string    `json:"name"`
	State      string    `json:"state"` // "running" | "destroyed"
	Site       string    `json:"site"`
	DeployedAt time.Time `json:"deployed_at"`

	Containers []ContainerStatus `json:"containers,omitempty"`
	Sites      []SiteStatus      `json:"sites,omitempty"`

	Healthy bool                    `json:"healthy"`
	Health  []telemetry.CheckResult `json:"health,omitempty"`

	StoreSeries      int    `json:"store_series"`
	StoreAppends     uint64 `json:"store_appends"`
	DirectoryEntries int    `json:"directory_entries"`

	AlertCount int           `json:"alert_count"`
	Alerts     []rules.Alert `json:"alerts,omitempty"` // most recent first, capped

	Faults []AppliedFault `json:"faults,omitempty"` // chaos entries already fired
}

// ContainerStatus is one container's census row.
type ContainerStatus struct {
	Name         string   `json:"name"`
	Role         string   `json:"role"`
	Addr         string   `json:"addr"` // empty while detached
	Agents       []string `json:"agents"`
	MeasuredLoad float64  `json:"measured_load"`
	MailboxDepth int      `json:"mailbox_depth"`
}

// SiteStatus is one managed domain's census row.
type SiteStatus struct {
	Name     string        `json:"name"`
	Devices  int           `json:"devices"`
	Poll     time.Duration `json:"poll"`
	Step     int           `json:"step"` // simulation step of the site's first device
	Advanced bool          `json:"self_advancing"`
}

// statusAlertCap bounds the alert stream embedded in a status snapshot.
const statusAlertCap = 8

// roleOf maps a container name to its sub-grid role.
func roleOf(name string) string {
	switch {
	case name == "ig":
		return "interface"
	case name == "pg-root":
		return "processor-root"
	case strings.HasPrefix(name, "pg-"):
		return "processor"
	case name == "clg", strings.HasPrefix(name, "clg-"):
		return "classifier"
	case strings.HasPrefix(name, "cg-"):
		return "collector"
	}
	return "container"
}

// Status assembles the deployment's current census. It stays callable
// after Destroy, reporting State "destroyed" with the identity fields
// only.
func (d *Deployment) Status() *Status {
	st := &Status{
		Name:       d.spec.Name,
		State:      "running",
		Site:       d.spec.Sites[0].Name,
		DeployedAt: d.deployedAt,
	}
	if d.destroyed.Load() {
		st.State = "destroyed"
		return st
	}
	g := d.grid
	for _, c := range g.Containers() {
		agents := c.AgentNames()
		sort.Strings(agents)
		st.Containers = append(st.Containers, ContainerStatus{
			Name:         c.Name(),
			Role:         roleOf(c.Name()),
			Addr:         c.Addr(),
			Agents:       agents,
			MeasuredLoad: c.MeasuredLoad(),
			MailboxDepth: c.MailboxDepth(),
		})
	}
	for _, site := range d.spec.Sites {
		ss := SiteStatus{
			Name: site.Name, Poll: site.Poll,
			Advanced: site.AdvanceEvery > 0,
		}
		if fleet, ok := d.fleets[site.Name]; ok {
			stations := fleet.Stations()
			ss.Devices = len(stations)
			if len(stations) > 0 {
				ss.Step = stations[0].Device.Step()
			}
		}
		st.Sites = append(st.Sites, ss)
	}
	st.Healthy, st.Health = g.Health().Check()
	st.StoreSeries, st.StoreAppends = g.Federation().Stats()
	st.DirectoryEntries = g.Directory().Len()
	alerts := g.Alerts()
	st.AlertCount = len(alerts)
	// Most recent first, capped: the status payload is a view, not the
	// full history (GET /alerts serves that).
	for i := len(alerts) - 1; i >= 0 && len(st.Alerts) < statusAlertCap; i-- {
		st.Alerts = append(st.Alerts, alerts[i])
	}
	if d.chaos != nil {
		st.Faults = d.chaos.appliedFaults()
	}
	return st
}

// RenderText renders a status snapshot as the aligned text block
// `gridctl status` prints (and GET /topology?format=text serves).
func RenderText(st *Status) string {
	var b strings.Builder
	fmt.Fprintf(&b, "topology %s: %s\n", st.Name, st.State)
	fmt.Fprintf(&b, "deployed: %s\n", st.DeployedAt.Format(time.RFC3339))
	if st.State != "running" {
		return b.String()
	}
	health := "degraded"
	if st.Healthy {
		health = "ok"
	}
	var checks []string
	for _, c := range st.Health {
		mark := c.Name
		if !c.Healthy {
			mark += "!"
		}
		checks = append(checks, mark)
	}
	fmt.Fprintf(&b, "health: %s (%s)\n", health, strings.Join(checks, ", "))
	fmt.Fprintf(&b, "store: %d series, %d appends · directory: %d entries\n",
		st.StoreSeries, st.StoreAppends, st.DirectoryEntries)

	b.WriteString("containers:\n")
	fmt.Fprintf(&b, "  %-10s %-16s %-22s %7s %6s %8s\n",
		"NAME", "ROLE", "ADDR", "AGENTS", "LOAD", "MAILBOX")
	for _, c := range st.Containers {
		addr := c.Addr
		if addr == "" {
			addr = "(detached)"
		}
		fmt.Fprintf(&b, "  %-10s %-16s %-22s %7d %6.2f %8d\n",
			c.Name, c.Role, addr, len(c.Agents), c.MeasuredLoad, c.MailboxDepth)
	}

	b.WriteString("sites:\n")
	for _, s := range st.Sites {
		drive := "driven externally"
		if s.Advanced {
			drive = "self-advancing"
		}
		fmt.Fprintf(&b, "  %-10s %3d devices · poll %s · step %d · %s\n",
			s.Name, s.Devices, s.Poll, s.Step, drive)
	}

	fmt.Fprintf(&b, "alerts: %d total\n", st.AlertCount)
	for _, a := range st.Alerts {
		fmt.Fprintf(&b, "  %s\n", a)
	}
	if len(st.Faults) > 0 {
		b.WriteString("chaos applied:\n")
		for _, f := range st.Faults {
			line := fmt.Sprintf("  %s: %s %s", f.Name, f.Action, f.Target)
			if f.Error != "" {
				line += " (error: " + f.Error + ")"
			}
			b.WriteString(strings.TrimRight(line, " ") + "\n")
		}
	}
	return b.String()
}
