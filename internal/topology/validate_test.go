package topology

import (
	"strings"
	"testing"
	"time"
)

// validSpec returns a spec that passes validation; tests break one
// thing at a time from here.
func validSpec() *Spec {
	spec := NewSpec("ok")
	site := newSite("s1")
	site.Hosts = 2
	spec.Sites = []SiteSpec{site}
	return spec
}

func TestValidateAccepts(t *testing.T) {
	if err := validSpec().Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

// The acceptance bar: a spec with three independent mistakes reports
// all three in one pass.
func TestValidateEnumeratesAllMistakes(t *testing.T) {
	spec, perr := Parse(`name: broken
grid:
  collectors: 0
site s1:
  hosts: 1
site s1:
  hosts: 2
chaos:
  fault peg:
    after: 0s
    action: device
    target: s1/host-99
    kind: cpu-pegged
`)
	if perr != nil {
		t.Fatalf("parse should succeed (mistakes are semantic): %v", perr)
	}
	err := spec.Validate()
	if err == nil {
		t.Fatal("expected errors")
	}
	list, ok := err.(ErrorList)
	if !ok {
		t.Fatalf("want ErrorList, got %T", err)
	}
	if len(list) < 3 {
		t.Fatalf("want all 3 mistakes reported, got %d:\n%v", len(list), err)
	}
	for _, want := range []string{
		"zero replicas",       // collectors: 0
		`duplicate site "s1"`, // site s1 twice
		"dangling target",     // host-99 does not exist
	} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("missing %q in:\n%v", want, err)
		}
	}
}

func TestValidateSingleMistakes(t *testing.T) {
	cases := []struct {
		name  string
		mutat func(*Spec)
		want  string
	}{
		{"empty name", func(s *Spec) { s.Name = "" }, "name is required"},
		{"name with slash", func(s *Spec) { s.Name = "a/b" }, "must not contain"},
		{"zero analyzers", func(s *Spec) { s.Grid.Analyzers = 0 }, "grid.analyzers: zero replicas"},
		{"absurd collectors", func(s *Spec) { s.Grid.Collectors = 1 << 30 }, "exceeds the 256 ceiling"},
		{"absurd hosts", func(s *Spec) { s.Sites[0].Hosts = 1 << 30 }, "exceeds the 4096 ceiling"},
		{"zero classifiers", func(s *Spec) { s.Grid.Classifiers = 0 }, "grid.classifiers: zero partitions"},
		{"absurd classifiers", func(s *Spec) { s.Grid.Classifiers = 1 << 20 }, "exceeds the 256 ceiling"},
		{"negative store shards", func(s *Spec) { s.Grid.StoreShards = -1 }, "store_shards"},
		{"absurd store shards", func(s *Spec) { s.Grid.StoreShards = 1 << 20 }, "exceeds the 256 ceiling"},
		{"reporter replication", func(s *Spec) { s.Grid.Reporters = 3 }, "not implemented yet"},
		{"bad scheduler", func(s *Spec) { s.Grid.Scheduler = "lottery" }, "unknown strategy"},
		{"bad wire", func(s *Spec) { s.Grid.Wire = "xml" }, "unknown format"},
		{"negative bid window", func(s *Spec) { s.Grid.BidWindow = -time.Second }, "bid_window"},
		{"no sites", func(s *Spec) { s.Sites = nil }, "at least one site"},
		{"empty site", func(s *Spec) { s.Sites[0].Hosts = 0 }, "no devices"},
		{"negative devices", func(s *Spec) { s.Sites[0].Routers = -1 }, "negative device count"},
		{"zero poll", func(s *Spec) { s.Sites[0].Poll = 0 }, "poll must be positive"},
		{"chaos empty action", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x"}}
		}, "action is required"},
		{"chaos unknown action", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: "explode"}}
		}, "unknown action"},
		{"chaos bad device kind", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDevice, Target: "s1/host-01", Kind: "gremlins"}}
		}, "unknown device fault kind"},
		{"chaos malformed target", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDevice, Target: "host-01", Kind: "cpu-pegged"}}
		}, "must be 'site/device'"},
		{"chaos dangling container", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDetach, Target: "cg-99"}}
		}, "dangling target"},
		{"chaos drop percent", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDrop, Target: "cg-1", Percent: 0}}
		}, "percent must be in"},
		{"chaos network fault over tcp", func(s *Spec) {
			s.Grid.TCP = true
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDrop, Target: "cg-1", Percent: 10}}
		}, "in-process transport"},
		{"chaos heal with target", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosHeal, Target: "cg-1"}}
		}, "heal takes no target"},
		{"chaos duplicate names", func(s *Spec) {
			s.Chaos = []ChaosEntry{
				{Name: "x", Action: ChaosHeal},
				{Name: "x", Action: ChaosHeal},
			}
		}, "duplicate chaos fault"},
		{"chaos negative after", func(s *Spec) {
			s.Chaos = []ChaosEntry{{Name: "x", Action: ChaosHeal, After: -time.Second}}
		}, "after must not be negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			spec := validSpec()
			tc.mutat(spec)
			err := spec.Validate()
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("want error containing %q, got %v", tc.want, err)
			}
		})
	}
}

// Dangling-target errors for container actions name what would exist.
func TestValidateDanglingContainerListsNames(t *testing.T) {
	spec := validSpec()
	spec.Chaos = []ChaosEntry{{Name: "x", Action: ChaosDetach, Target: "pg-9"}}
	err := spec.Validate()
	if err == nil || !strings.Contains(err.Error(), "ig,pg-root,pg-1,pg-2,clg,cg-1,cg-2,cg-3") {
		t.Fatalf("error should enumerate deployable containers, got %v", err)
	}
}
