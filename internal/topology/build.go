package topology

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

// Options tunes a deployment beyond what the spec describes.
type Options struct {
	// ErrorLog receives grid-internal and chaos-runner errors.
	ErrorLog func(error)
}

// Deployment is a running topology: the grid, one simulated fleet per
// site, the background drivers (per-site advance tickers, the chaos
// schedule) and the lifecycle handle the control plane manages.
type Deployment struct {
	spec       *Spec
	grid       *core.Grid
	fleets     map[string]*device.Fleet
	deployedAt time.Time
	errlog     func(error)

	cancel context.CancelFunc
	wg     sync.WaitGroup
	chaos  *chaosRunner

	destroyed   atomic.Bool
	destroyOnce sync.Once
	destroyErr  error
}

// Deploy turns a validated spec into a running grid with its fleets,
// goals and chaos schedule. The deployment owns its lifetime: Destroy
// (or nothing short of process exit) tears it down.
func Deploy(spec *Spec, opts Options) (*Deployment, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	cfg := core.Config{
		Site:        spec.Sites[0].Name,
		Collectors:  spec.Grid.Collectors,
		Analyzers:   spec.Grid.Analyzers,
		Classifiers: spec.Grid.Classifiers,
		StoreShards: spec.Grid.StoreShards,
		Community:   spec.Grid.Community,
		Rules:       spec.Rules,
		LocalRules:  spec.LocalRules,
		Scheduler:   spec.Grid.Scheduler,
		Negotiated:  spec.Grid.Negotiated,
		BidWindow:   spec.Grid.BidWindow,
		WireFormat:  spec.Grid.Wire,
		FlushWindow: spec.Grid.FlushWindow,
		ErrorLog:    opts.ErrorLog,
	}
	if spec.Grid.TCP {
		cfg.TCPHost = "127.0.0.1"
	}
	grid, err := core.NewGrid(cfg)
	if err != nil {
		return nil, fmt.Errorf("topology: assemble grid: %w", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	d := &Deployment{
		spec:       spec,
		grid:       grid,
		fleets:     make(map[string]*device.Fleet, len(spec.Sites)),
		deployedAt: time.Now().UTC(),
		errlog:     opts.ErrorLog,
		cancel:     cancel,
	}
	fail := func(err error) (*Deployment, error) {
		cancel()
		for _, f := range d.fleets {
			_ = f.Close()
		}
		_ = grid.Stop()
		return nil, err
	}
	if err := grid.Start(ctx); err != nil {
		return fail(fmt.Errorf("topology: start grid: %w", err))
	}
	for _, site := range spec.Sites {
		fs := site.FleetSpec()
		fleet, err := device.NewFleet(fs.BuildDevices(), spec.Grid.Community)
		if err != nil {
			return fail(fmt.Errorf("topology: site %s fleet: %w", site.Name, err))
		}
		d.fleets[site.Name] = fleet
		if err := grid.AddGoals(workload.Goals(fs, fleet, 1, site.Poll)[0]); err != nil {
			return fail(fmt.Errorf("topology: site %s goals: %w", site.Name, err))
		}
		if site.AdvanceEvery > 0 {
			d.wg.Add(1)
			go d.advanceFleet(ctx, fleet, site.AdvanceEvery)
		}
	}
	if len(spec.Chaos) > 0 {
		d.chaos = newChaosRunner(d)
		d.wg.Add(1)
		go d.chaos.run(ctx)
	}
	return d, nil
}

// advanceFleet steps a site's simulated devices on a fixed period so a
// deployed spec evolves without an external driver.
func (d *Deployment) advanceFleet(ctx context.Context, fleet *device.Fleet, every time.Duration) {
	defer d.wg.Done()
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			fleet.Advance(1)
		}
	}
}

// Grid exposes the running grid for drivers and tests.
func (d *Deployment) Grid() *core.Grid { return d.grid }

// Spec returns the deployed spec.
func (d *Deployment) Spec() *Spec { return d.spec }

// Fleet returns a site's simulated device fleet.
func (d *Deployment) Fleet(site string) (*device.Fleet, bool) {
	f, ok := d.fleets[site]
	return f, ok
}

// Destroyed reports whether Destroy has completed.
func (d *Deployment) Destroyed() bool { return d.destroyed.Load() }

// Destroy tears the deployment down in order — chaos schedule and
// fleet drivers first, then the device fleets, then the grid (which
// stops every container and any grid-owned HTTP frontend). It is
// idempotent: the teardown runs once and later calls return the same
// result.
func (d *Deployment) Destroy() error {
	d.destroyOnce.Do(func() {
		// 1. Stop the background drivers so nothing injects faults or
		//    advances devices into a half-dismantled grid.
		d.cancel()
		d.wg.Wait()
		// 2. Heal any installed network fault plan.
		if d.chaos != nil {
			d.chaos.heal()
		}
		// 3. Close the simulated fleets (their SNMP endpoints).
		var firstErr error
		for _, f := range d.fleets {
			if err := f.Close(); err != nil && firstErr == nil {
				firstErr = fmt.Errorf("topology: close fleet: %w", err)
			}
		}
		// 4. Stop the grid itself.
		if err := d.grid.Stop(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("topology: stop grid: %w", err)
		}
		d.destroyErr = firstErr
		d.destroyed.Store(true)
	})
	return d.destroyErr
}

// logErr forwards an error to the deployment's error log, if any.
func (d *Deployment) logErr(err error) {
	if err != nil && d.errlog != nil {
		d.errlog(err)
	}
}
