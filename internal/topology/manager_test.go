package topology

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/report"
)

// startManager brings up a detached report server with a topology
// control plane, returning the base URL.
func startManager(t *testing.T) (*Manager, string) {
	t.Helper()
	srv, err := report.NewDetachedServer("127.0.0.1:0")
	if err != nil {
		t.Fatalf("server: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	mgr := NewManager(Options{ErrorLog: func(err error) { t.Log("manager:", err) }})
	t.Cleanup(func() { mgr.Close() })
	mgr.AttachServer(srv)
	return mgr, "http://" + srv.Addr()
}

func httpDo(t *testing.T, method, url, body string) (int, string) {
	t.Helper()
	var rdr io.Reader
	if body != "" {
		rdr = strings.NewReader(body)
	}
	req, err := http.NewRequest(method, url, rdr)
	if err != nil {
		t.Fatal(err)
	}
	cli := &http.Client{Timeout: 30 * time.Second}
	resp, err := cli.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(data)
}

// TestTopologyHTTPLifecycle walks the full gridctl conversation:
// 503 before deploy, POST to deploy, JSON/text/html status, 409 on a
// second deploy, DELETE to destroy, and 503 again afterwards.
func TestTopologyHTTPLifecycle(t *testing.T) {
	_, base := startManager(t)
	u := base + "/topology"

	// Before any deploy: the /readyz not-yet-serving contract — 503
	// with a JSON body, never an empty 200 or a 404.
	code, body := httpDo(t, http.MethodGet, u, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("pre-deploy GET = %d, want 503", code)
	}
	var notServing struct {
		Ready bool   `json:"ready"`
		Error string `json:"error"`
	}
	if err := json.Unmarshal([]byte(body), &notServing); err != nil {
		t.Fatalf("pre-deploy body is not JSON: %v\n%s", err, body)
	}
	if notServing.Ready || notServing.Error == "" {
		t.Fatalf("pre-deploy body = %+v", notServing)
	}

	// Grid endpoints obey the same contract while detached.
	code, body = httpDo(t, http.MethodGet, base+"/readyz", "")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"ready"`) {
		t.Fatalf("detached /readyz = %d %s", code, body)
	}

	// Deploy.
	code, body = httpDo(t, http.MethodPost, u, lifecycleSpec)
	if code != http.StatusOK {
		t.Fatalf("deploy = %d: %s", code, body)
	}

	// JSON status round-trips into the same struct the server built.
	code, body = httpDo(t, http.MethodGet, u, "")
	if code != http.StatusOK {
		t.Fatalf("GET = %d: %s", code, body)
	}
	var st Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatalf("status JSON: %v", err)
	}
	// collectors:2 + analyzers:2 → ig, pg-root, pg-1, pg-2, clg, cg-1, cg-2.
	if st.Name != "lifecycle" || st.State != "running" || len(st.Containers) != 7 {
		t.Fatalf("status = %+v", st)
	}

	// Text and html renderings of the same census.
	code, body = httpDo(t, http.MethodGet, u+"?format=text", "")
	if code != http.StatusOK || !strings.Contains(body, "topology lifecycle: running") {
		t.Fatalf("text status = %d:\n%s", code, body)
	}
	code, body = httpDo(t, http.MethodGet, u+"?format=html", "")
	if code != http.StatusOK || !strings.Contains(body, "<!DOCTYPE html>") {
		t.Fatalf("html status = %d", code)
	}
	code, _ = httpDo(t, http.MethodGet, u+"?format=yaml", "")
	if code != http.StatusBadRequest {
		t.Fatalf("unknown format = %d, want 400", code)
	}

	// With a deployment attached, the grid endpoints serve it (200 with
	// an empty history — not the detached 503).
	code, _ = httpDo(t, http.MethodGet, base+"/alerts", "")
	if code != http.StatusOK {
		t.Fatalf("attached /alerts = %d", code)
	}

	// A second deploy conflicts until the first is destroyed.
	code, body = httpDo(t, http.MethodPost, u, lifecycleSpec)
	if code != http.StatusConflict {
		t.Fatalf("second deploy = %d: %s", code, body)
	}

	// An invalid spec is a 400 carrying every finding.
	_, _ = httpDo(t, http.MethodDelete, u, "")
	code, body = httpDo(t, http.MethodPost, u, "name: bad\ngrid:\n  collectors: 0\n")
	if code != http.StatusBadRequest || !strings.Contains(body, "zero replicas") {
		t.Fatalf("invalid deploy = %d: %s", code, body)
	}

	// Destroy: deploy again, then DELETE.
	code, body = httpDo(t, http.MethodPost, u, lifecycleSpec)
	if code != http.StatusOK {
		t.Fatalf("redeploy = %d: %s", code, body)
	}
	code, body = httpDo(t, http.MethodDelete, u, "")
	if code != http.StatusOK {
		t.Fatalf("destroy = %d: %s", code, body)
	}
	var out struct {
		Destroyed bool `json:"destroyed"`
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || !out.Destroyed {
		t.Fatalf("destroy body = %s (err %v)", body, err)
	}

	// Gone again: 503 on /topology, destroyed=false on a second DELETE.
	code, _ = httpDo(t, http.MethodGet, u, "")
	if code != http.StatusServiceUnavailable {
		t.Fatalf("post-destroy GET = %d, want 503", code)
	}
	code, body = httpDo(t, http.MethodDelete, u, "")
	if code != http.StatusOK {
		t.Fatalf("second destroy = %d", code)
	}
	if err := json.Unmarshal([]byte(body), &out); err != nil || out.Destroyed {
		t.Fatalf("second destroy body = %s", body)
	}

	// Unsupported methods advertise what is allowed.
	code, _ = httpDo(t, http.MethodPut, u, "x")
	if code != http.StatusMethodNotAllowed {
		t.Fatalf("PUT = %d, want 405", code)
	}
}

// TestManagerDeploySerialized: the deploying flag reserves the slot,
// so two concurrent deploys cannot both win.
func TestManagerDeployProgrammatic(t *testing.T) {
	mgr := NewManager(Options{})
	defer mgr.Close()
	dep, err := mgr.Deploy(lifecycleSpec)
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	if _, err := mgr.Deploy(lifecycleSpec); err != ErrAlreadyDeployed {
		t.Fatalf("second deploy err = %v, want ErrAlreadyDeployed", err)
	}
	if cur, ok := mgr.Current(); !ok || cur != dep {
		t.Fatal("Current should return the live deployment")
	}
	destroyed, err := mgr.Destroy()
	if err != nil || !destroyed {
		t.Fatalf("Destroy = %v, %v", destroyed, err)
	}
	if !dep.Destroyed() {
		t.Fatal("deployment not destroyed")
	}
	destroyed, err = mgr.Destroy()
	if err != nil || destroyed {
		t.Fatalf("second Destroy = %v, %v", destroyed, err)
	}
}
