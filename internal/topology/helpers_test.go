package topology

import (
	"os"
	"testing"
)

// readFile loads a fixture (or checked-in spec) for a test.
func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read %s: %v", path, err)
	}
	return string(data)
}
