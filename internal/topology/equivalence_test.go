package topology

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/rules"
	"agentgrid/internal/workload"
)

// The checked-in quickstart spec must behave like the hand-built
// examples/quickstart program: same container census, and the same
// hot-cpu alert once the pegged host is collected.
func TestQuickstartSpecMatchesHandBuiltExample(t *testing.T) {
	spec, err := Load(readFile(t, "../../examples/specs/quickstart.topo"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// The hand-built twin, assembled exactly as the example does it.
	hand, err := core.NewGrid(core.Config{Site: "site1", Rules: spec.Rules})
	if err != nil {
		t.Fatalf("hand grid: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := hand.Start(ctx); err != nil {
		t.Fatalf("hand start: %v", err)
	}
	defer hand.Stop()
	fs := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: 42}
	fleet, err := device.NewFleet(fs.BuildDevices(), "public")
	if err != nil {
		t.Fatalf("hand fleet: %v", err)
	}
	defer fleet.Close()
	if err := hand.AddGoals(workload.Goals(fs, fleet, 1, time.Second)[0]); err != nil {
		t.Fatalf("hand goals: %v", err)
	}
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	fleet.Advance(5)
	if err := hand.CollectNow(ctx); err != nil {
		t.Fatalf("hand collect: %v", err)
	}
	hand.WaitIdle(10 * time.Second)
	handAlert, ok := hand.Interface().WaitAlert(ctx, func(a rules.Alert) bool { return a.Rule == "hot-cpu" })
	if !ok {
		t.Fatal("hand-built grid never raised hot-cpu")
	}

	// The declarative twin: the spec's chaos entry pegs the same host,
	// advance_every drives the simulation, the poll goal collects.
	dep, err := Deploy(spec, Options{ErrorLog: func(err error) { t.Log("deploy:", err) }})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer dep.Destroy()
	depAlert, ok := dep.Grid().Interface().WaitAlert(ctx, func(a rules.Alert) bool { return a.Rule == "hot-cpu" })
	if !ok {
		t.Fatal("deployed spec never raised hot-cpu")
	}

	// Same census, container for container.
	handNames := containerNames(hand)
	depNames := containerNames(dep.Grid())
	if len(handNames) != len(depNames) {
		t.Fatalf("census size: hand %v vs spec %v", handNames, depNames)
	}
	for i := range handNames {
		if handNames[i] != depNames[i] {
			t.Errorf("census[%d]: hand %q vs spec %q", i, handNames[i], depNames[i])
		}
	}
	// Same alert identity.
	if handAlert.Rule != depAlert.Rule || handAlert.Site != depAlert.Site ||
		handAlert.Device != depAlert.Device || handAlert.Severity != depAlert.Severity {
		t.Errorf("alerts diverge: hand %+v vs spec %+v", handAlert, depAlert)
	}
}

// The datacenter spec must deploy the example's larger shape — 3
// collectors, 4 analyzers, a 60-host farm — and its broken servers
// must surface as critical CPU alerts.
func TestDatacenterSpecMatchesHandBuiltShape(t *testing.T) {
	spec, err := Load(readFile(t, "../../examples/specs/datacenter.topo"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}

	// The hand-built twin's census can be compared without starting it:
	// containers are assembled by NewGrid.
	hand, err := core.NewGrid(core.Config{
		Site: "farm", Collectors: 3, Analyzers: 4,
		Rules: spec.Rules, Scheduler: "capability",
	})
	if err != nil {
		t.Fatalf("hand grid: %v", err)
	}
	handNames := containerNames(hand)

	dep, err := Deploy(spec, Options{ErrorLog: func(err error) { t.Log("deploy:", err) }})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer dep.Destroy()

	depNames := containerNames(dep.Grid())
	if len(handNames) != len(depNames) {
		t.Fatalf("census size: hand %v vs spec %v", handNames, depNames)
	}
	for i := range handNames {
		if handNames[i] != depNames[i] {
			t.Errorf("census[%d]: hand %q vs spec %q", i, handNames[i], depNames[i])
		}
	}
	fleet, ok := dep.Fleet("farm")
	if !ok || len(fleet.Stations()) != 60 {
		t.Fatalf("farm fleet = %v stations", len(fleet.Stations()))
	}

	// The chaos schedule pegged three servers; the level-1 cpu-critical
	// rule must fire as the self-advancing fleet is collected.
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	alert, ok := dep.Grid().Interface().WaitAlert(ctx, func(a rules.Alert) bool { return a.Rule == "cpu-critical" })
	if !ok {
		t.Fatal("deployed datacenter spec never raised cpu-critical")
	}
	if alert.Severity != "critical" || alert.Site != "farm" {
		t.Errorf("alert = %+v", alert)
	}
}

// containerNames lists a grid's container census in assembly order.
func containerNames(g *core.Grid) []string {
	var out []string
	for _, c := range g.Containers() {
		out = append(out, c.Name())
	}
	return out
}
