package topology

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"agentgrid/internal/device"
	"agentgrid/internal/transport"
)

// chaosRunner applies a spec's fault schedule to a live deployment.
// Entries fire once, at their offset from deploy time, in offset
// order. Unlike the test-oriented chaos harness (virtual clock,
// scenario scripts), the topology runner works in wall-clock time
// against a deployed grid — the production-shaped "game day" schedule
// a checked-in spec can reproduce.
type chaosRunner struct {
	dep *Deployment

	mu      sync.Mutex
	drops   map[string]transport.FaultPlan // guarded by mu; active drop plans by fault name
	applied []AppliedFault                 // guarded by mu
}

// AppliedFault records one schedule entry that has fired, for status.
type AppliedFault struct {
	Name   string    `json:"name"`
	Action string    `json:"action"`
	Target string    `json:"target,omitempty"`
	At     time.Time `json:"at"`
	Error  string    `json:"error,omitempty"`
}

func newChaosRunner(d *Deployment) *chaosRunner {
	return &chaosRunner{dep: d, drops: make(map[string]transport.FaultPlan)}
}

// run fires the schedule until every entry has been applied or the
// deployment shuts down.
func (r *chaosRunner) run(ctx context.Context) {
	defer r.dep.wg.Done()
	entries := append([]ChaosEntry(nil), r.dep.spec.Chaos...)
	sort.SliceStable(entries, func(i, j int) bool { return entries[i].After < entries[j].After })
	start := time.Now()
	for _, e := range entries {
		wait := e.After - time.Since(start)
		if wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-ctx.Done():
				timer.Stop()
				return
			case <-timer.C:
			}
		}
		err := r.apply(e)
		r.record(e, err)
		r.dep.logErr(err)
	}
}

// record notes an applied entry for status output and snapshots the
// flight recorder: the ring's pre-fault tail is the triage baseline,
// captured before the fault's fallout scrolls it away.
func (r *chaosRunner) record(e ChaosEntry, err error) {
	af := AppliedFault{Name: e.Name, Action: e.Action, Target: e.Target, At: time.Now().UTC()}
	if err != nil {
		af.Error = err.Error()
	}
	r.mu.Lock()
	r.applied = append(r.applied, af)
	r.mu.Unlock()
	if err == nil && e.Action != ChaosHeal && e.Action != ChaosClear {
		r.dep.grid.Flight().Trigger(fmt.Sprintf("chaos: %s (%s %s)", e.Name, e.Action, e.Target))
	}
}

// appliedFaults snapshots the fired entries.
func (r *chaosRunner) appliedFaults() []AppliedFault {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]AppliedFault(nil), r.applied...)
}

// apply executes one schedule entry against the live deployment.
func (r *chaosRunner) apply(e ChaosEntry) error {
	g := r.dep.grid
	switch e.Action {
	case ChaosDevice, ChaosClear:
		site, dev, _ := cutTarget(e.Target)
		fleet, ok := r.dep.Fleet(site)
		if !ok {
			return fmt.Errorf("topology chaos %q: no fleet for site %q", e.Name, site)
		}
		st, ok := fleet.Station(dev)
		if !ok {
			return fmt.Errorf("topology chaos %q: no device %q at site %q", e.Name, dev, site)
		}
		if e.Action == ChaosDevice {
			st.Device.InjectFault(device.Fault(e.Kind))
		} else {
			st.Device.ClearFault(device.Fault(e.Kind))
		}
		return nil
	case ChaosDetach:
		c, ok := g.Container(e.Target)
		if !ok {
			return fmt.Errorf("topology chaos %q: no container %q", e.Name, e.Target)
		}
		return c.Detach()
	case ChaosReattach:
		c, ok := g.Container(e.Target)
		if !ok {
			return fmt.Errorf("topology chaos %q: no container %q", e.Name, e.Target)
		}
		// The container's df-heartbeat re-registers it with the
		// directory on its next beat; nothing more to rewire.
		return c.AttachInProc(g.Network(), "inproc://"+e.Target)
	case ChaosDrop:
		plan := transport.Sometimes(e.Seed, e.Percent/100,
			transport.Isolate("inproc://"+e.Target))
		r.mu.Lock()
		r.drops[e.Name] = plan
		r.mu.Unlock()
		r.install()
		return nil
	case ChaosHeal:
		r.heal()
		return nil
	}
	return fmt.Errorf("topology chaos %q: unknown action %q", e.Name, e.Action)
}

// heal clears every installed network fault plan.
func (r *chaosRunner) heal() {
	r.mu.Lock()
	r.drops = make(map[string]transport.FaultPlan)
	r.mu.Unlock()
	r.install()
}

// install rebuilds the composite plan from the active drops and
// installs it on the in-process network. The plan is assembled under
// r.mu but SetPlan runs outside it, so this lock never nests around
// the network's.
func (r *chaosRunner) install() {
	r.mu.Lock()
	names := make([]string, 0, len(r.drops))
	for name := range r.drops {
		names = append(names, name)
	}
	sort.Strings(names)
	plans := make([]transport.FaultPlan, 0, len(names))
	for _, name := range names {
		plans = append(plans, r.drops[name])
	}
	r.mu.Unlock()
	if len(plans) == 0 {
		r.dep.grid.Network().SetPlan(nil)
		return
	}
	r.dep.grid.Network().SetPlan(transport.Chain(plans...))
}

// cutTarget splits "site/device".
func cutTarget(target string) (site, dev string, ok bool) {
	for i := 0; i < len(target); i++ {
		if target[i] == '/' {
			return target[:i], target[i+1:], true
		}
	}
	return target, "", false
}
