package topology

import (
	"encoding/json"
	"flag"
	"os"
	"reflect"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/rules"
	"agentgrid/internal/telemetry"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// statusFixture is a fully-populated, deterministic status snapshot —
// every field the text renderer touches, with fixed values.
func statusFixture() *Status {
	return &Status{
		Name:       "fixture",
		State:      "running",
		Site:       "site1",
		DeployedAt: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC),
		Containers: []ContainerStatus{
			{Name: "ig", Role: "interface", Addr: "inproc://ig", Agents: []string{"df-heartbeat", "report"}, MeasuredLoad: 0.12, MailboxDepth: 0},
			{Name: "pg-root", Role: "processor-root", Addr: "inproc://pg-root", Agents: []string{"df-heartbeat", "root"}, MeasuredLoad: 0.50, MailboxDepth: 2},
			{Name: "pg-1", Role: "processor", Addr: "", Agents: []string{"analyzer"}, MeasuredLoad: 1.25, MailboxDepth: 7},
			{Name: "clg", Role: "classifier", Addr: "inproc://clg", Agents: []string{"classifier"}, MeasuredLoad: 0.05, MailboxDepth: 0},
			{Name: "cg-1", Role: "collector", Addr: "inproc://cg-1", Agents: []string{"collector", "df-heartbeat"}, MeasuredLoad: 0.33, MailboxDepth: 1},
		},
		Sites: []SiteStatus{
			{Name: "site1", Devices: 2, Poll: time.Second, Step: 5, Advanced: true},
			{Name: "site2", Devices: 60, Poll: 150 * time.Millisecond, Step: 0, Advanced: false},
		},
		Healthy: false,
		Health: []telemetry.CheckResult{
			{Name: "store", Healthy: true},
			{Name: "directory", Healthy: false, Detail: "1 stale entry"},
		},
		StoreSeries:      12,
		StoreAppends:     340,
		DirectoryEntries: 7,
		AlertCount:       2,
		Alerts: []rules.Alert{
			{Rule: "hot-cpu", Severity: "critical", Level: 1, Site: "site1", Device: "host-01", Message: "CPU above 90% on host-01"},
			{Rule: "disk-low", Severity: "warning", Level: 2, Site: "site1", Device: "host-02", Message: "under 1GB free on host-02"},
		},
		Faults: []AppliedFault{
			{Name: "peg", Action: "device", Target: "site1/host-01", At: time.Date(2026, 8, 1, 12, 0, 1, 0, time.UTC)},
			{Name: "lossy", Action: "drop", Target: "cg-1", At: time.Date(2026, 8, 1, 12, 0, 2, 0, time.UTC), Error: "boom"},
		},
	}
}

// TestRenderTextGolden pins the exact text block `gridctl status`
// prints. Regenerate deliberately with:
//
//	go test ./internal/topology -run TestRenderTextGolden -update
func TestRenderTextGolden(t *testing.T) {
	got := RenderText(statusFixture())
	const golden = "testdata/status_golden.txt"
	if *updateGolden {
		if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want := readFile(t, golden)
	if got != want {
		t.Errorf("RenderText drifted from golden (run with -update to accept):\ngot:\n%s\nwant:\n%s", got, want)
	}
}

func TestRenderTextDestroyed(t *testing.T) {
	st := &Status{Name: "gone", State: "destroyed", DeployedAt: time.Date(2026, 8, 1, 12, 0, 0, 0, time.UTC)}
	got := RenderText(st)
	want := "topology gone: destroyed\ndeployed: 2026-08-01T12:00:00Z\n"
	if got != want {
		t.Errorf("got:\n%q\nwant:\n%q", got, want)
	}
}

// TestStatusJSONRoundTrip pins the GET /topology payload: a status
// snapshot survives marshal/unmarshal without loss.
func TestStatusJSONRoundTrip(t *testing.T) {
	st := statusFixture()
	data, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var back Status
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !reflect.DeepEqual(st, &back) {
		t.Errorf("round trip lost data:\nbefore: %+v\nafter:  %+v", st, &back)
	}
	// Field names are part of the HTTP contract.
	for _, key := range []string{
		`"name"`, `"state"`, `"deployed_at"`, `"containers"`, `"measured_load"`,
		`"mailbox_depth"`, `"sites"`, `"healthy"`, `"store_series"`,
		`"directory_entries"`, `"alert_count"`, `"faults"`,
	} {
		if !strings.Contains(string(data), key) {
			t.Errorf("JSON payload missing %s", key)
		}
	}
}

// TestRenderHTML sanity-checks the live view over the same fixture.
func TestRenderHTML(t *testing.T) {
	body, err := RenderHTML(statusFixture())
	if err != nil {
		t.Fatalf("RenderHTML: %v", err)
	}
	html := string(body)
	for _, want := range []string{
		"<!DOCTYPE html>", "fixture", "pg-root", "host-01", "detached",
		"http-equiv=\"refresh\"", "chaos applied",
	} {
		if !strings.Contains(html, want) {
			t.Errorf("view missing %q", want)
		}
	}
}
