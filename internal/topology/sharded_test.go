package topology

import (
	"testing"
	"time"

	"agentgrid/internal/store"
)

// The checked-in sharded spec must deploy four classifier partitions
// (clg-1..clg-4) with routed ingest: every partition store receives
// exactly the devices the site-hash mapping assigns to it.
func TestShardedSpecDeploysClassifierPartitions(t *testing.T) {
	spec, err := Load(readFile(t, "../../examples/specs/sharded.topo"))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if spec.Grid.Classifiers != 4 || spec.Grid.StoreShards != 32 {
		t.Fatalf("spec shape = %d classifiers, %d shards", spec.Grid.Classifiers, spec.Grid.StoreShards)
	}

	// The spec's census names the partitioned classifiers.
	want := map[string]bool{"clg-1": true, "clg-2": true, "clg-3": true, "clg-4": true}
	for _, name := range spec.ContainerNames() {
		delete(want, name)
	}
	if len(want) != 0 {
		t.Fatalf("ContainerNames missing %v (got %v)", want, spec.ContainerNames())
	}

	dep, err := Deploy(spec, Options{ErrorLog: func(err error) { t.Log("deploy:", err) }})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer dep.Destroy()
	g := dep.Grid()

	stores := g.Stores()
	if len(stores) != 4 {
		t.Fatalf("Stores() = %d partitions, want 4", len(stores))
	}
	for i, st := range stores {
		if st.ShardCount() != 32 {
			t.Fatalf("partition %d has %d shards, want 32", i, st.ShardCount())
		}
	}

	// The grid census carries every partition container as a classifier.
	status := dep.Status()
	classifiers := 0
	for _, c := range status.Containers {
		if c.Role == "classifier" {
			classifiers++
		}
	}
	if classifiers != 4 {
		t.Fatalf("census has %d classifier containers, want 4", classifiers)
	}

	// Routed ingest: wait until the self-advancing fleet lands records,
	// then check placement agrees with the published hash mapping.
	deadline := time.After(30 * time.Second)
	for {
		if _, appends := g.Federation().Stats(); appends > 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("no records ingested across any partition")
		case <-time.After(20 * time.Millisecond):
		}
	}
	misplaced := 0
	for i, st := range stores {
		for _, dev := range st.Devices() {
			site, device, _, err := store.ParseKey(dev + "/x")
			if err != nil {
				t.Fatalf("device key %q: %v", dev, err)
			}
			if store.PartitionIndex(site, device, 4) != i {
				misplaced++
				t.Errorf("device %s stored on partition %d, owner is %d",
					dev, i, store.PartitionIndex(site, device, 4))
			}
		}
	}
	if misplaced != 0 {
		t.Fatalf("%d devices on the wrong partition", misplaced)
	}

	// The core status publishes the partition map with per-partition
	// census and health.
	gs := g.Status()
	if len(gs.Partitions) != 4 {
		t.Fatalf("status has %d partitions, want 4", len(gs.Partitions))
	}
	for i, p := range gs.Partitions {
		if p.Partition != i || p.Container != []string{"clg-1", "clg-2", "clg-3", "clg-4"}[i] {
			t.Errorf("partition row %d = %+v", i, p)
		}
	}
}
