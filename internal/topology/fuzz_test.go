package topology

import (
	"os"
	"testing"
)

// FuzzParseSpec feeds hostile input through the full parse+validate
// path. The contract under fuzzing: never panic, never return a nil
// spec from Parse, and Load either yields a deployable spec or an
// error — malformed bytes must always land in the error channel.
func FuzzParseSpec(f *testing.F) {
	seeds := []string{
		"",
		"name: x\nsite s1:\n  hosts: 1\n",
		"name: x\ngrid:\n  collectors: 3\n  analyzers: 2\nsite s1:\n  hosts: 1\n  poll: 1s\n",
		"rules: |\n  rule \"r\" level 1 category cpu {\n      when latest(cpu.util) > 90\n      then alert \"x\"\n  }\n",
		"chaos:\n  fault f:\n    after: 1s\n    action: device\n    target: s1/host-01\n    kind: cpu-pegged\n",
		"name x\n: :\n\t\tboom\n",
		"a:\n b:\n  c:\n   d: |\n    e\n",
		"name: \x00\xff\nsite \xc3\x28:\n  hosts: 99999999999999999999\n",
		"site s:\nsite s:\nsite s:\n",
		"grid:\n  collectors: -1\n  wire: |\n    binary\n",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	for _, path := range []string{
		"../../examples/specs/quickstart.topo",
		"../../examples/specs/datacenter.topo",
	} {
		if data, err := os.ReadFile(path); err == nil {
			f.Add(string(data))
		}
	}
	f.Fuzz(func(t *testing.T, src string) {
		spec, _ := Parse(src)
		if spec == nil {
			t.Fatal("Parse returned a nil spec")
		}
		// Validation must also hold up against whatever Parse produced.
		_ = spec.Validate()
		if loaded, err := Load(src); err == nil && loaded == nil {
			t.Fatal("Load returned nil spec with nil error")
		}
	})
}
