package topology

import (
	"fmt"
	"strings"
)

// validSchedulers mirrors loadbalance.New's accepted strategy names.
var validSchedulers = map[string]bool{
	"round-robin": true, "random": true, "least-loaded": true, "capability": true,
}

// Sanity ceilings. A spec is a hand-written description of a
// simulated deployment; counts past these are typos (or hostile
// input), and validation must refuse them before DeviceNames or
// ContainerNames would try to materialize billions of entries.
const (
	maxReplicas       = 256
	maxDevicesPerSite = 4096
	// maxStoreShards mirrors store.MaxShards; a bigger value would be
	// silently clamped, so validation refuses it loudly instead.
	maxStoreShards = 256
)

// Validate checks the spec's semantics and returns every problem found
// — an ErrorList, never just the first mistake. A nil return means the
// spec is deployable.
func (s *Spec) Validate() error {
	var errs ErrorList
	addf := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("spec: %s", fmt.Sprintf(format, args...)))
	}

	if s.Name == "" {
		addf("name is required")
	} else if strings.ContainsAny(s.Name, " \t/") {
		addf("name %q must not contain spaces or '/'", s.Name)
	}

	// Replica counts: zero (or negative) replicas of any role cannot
	// form a grid; interface replication is explicitly not supported
	// yet, and the validator says so rather than deploying something
	// that ignores the number.
	if s.Grid.Collectors <= 0 {
		addf("grid.collectors: zero replicas (need at least 1 collector)")
	} else if s.Grid.Collectors > maxReplicas {
		addf("grid.collectors: %d replicas exceeds the %d ceiling", s.Grid.Collectors, maxReplicas)
	}
	if s.Grid.Analyzers <= 0 {
		addf("grid.analyzers: zero replicas (need at least 1 analysis worker)")
	} else if s.Grid.Analyzers > maxReplicas {
		addf("grid.analyzers: %d replicas exceeds the %d ceiling", s.Grid.Analyzers, maxReplicas)
	}
	if s.Grid.Classifiers <= 0 {
		addf("grid.classifiers: zero partitions (need at least 1 classifier)")
	} else if s.Grid.Classifiers > maxReplicas {
		addf("grid.classifiers: %d partitions exceeds the %d ceiling", s.Grid.Classifiers, maxReplicas)
	}
	if s.Grid.StoreShards < 0 {
		addf("grid.store_shards: must not be negative (0 means the store default)")
	} else if s.Grid.StoreShards > maxStoreShards {
		addf("grid.store_shards: %d shards exceeds the %d ceiling", s.Grid.StoreShards, maxStoreShards)
	}
	switch {
	case s.Grid.Reporters <= 0:
		addf("grid.reporters: zero replicas (need exactly 1 interface grid)")
	case s.Grid.Reporters > 1:
		addf("grid.reporters: %d replicas; interface replication is not implemented yet (must be 1)", s.Grid.Reporters)
	}
	if !validSchedulers[s.Grid.Scheduler] {
		addf("grid.scheduler: unknown strategy %q (round-robin|random|least-loaded|capability)", s.Grid.Scheduler)
	}
	if s.Grid.Wire != "binary" && s.Grid.Wire != "json" {
		addf("grid.wire: unknown format %q (binary|json)", s.Grid.Wire)
	}
	if s.Grid.BidWindow < 0 {
		addf("grid.bid_window: must not be negative")
	}
	if s.Grid.FlushWindow < 0 {
		addf("grid.flush_window: must not be negative")
	}

	if len(s.Sites) == 0 {
		addf("at least one site is required")
	}
	seenSites := map[string]bool{}
	devices := map[string]bool{} // "site/device" -> exists
	for _, site := range s.Sites {
		if site.Name == "" {
			addf("site with empty name")
			continue
		}
		if strings.ContainsAny(site.Name, " \t/") {
			addf("site %q: name must not contain spaces or '/'", site.Name)
		}
		if seenSites[site.Name] {
			addf("duplicate site %q", site.Name)
		}
		seenSites[site.Name] = true
		if site.Hosts < 0 || site.Routers < 0 || site.Switches < 0 {
			addf("site %q: negative device count", site.Name)
		}
		total := site.Hosts + site.Routers + site.Switches
		if total <= 0 {
			addf("site %q: no devices (hosts+routers+switches must be at least 1)", site.Name)
		}
		if site.Hosts > maxDevicesPerSite || site.Routers > maxDevicesPerSite ||
			site.Switches > maxDevicesPerSite || total > maxDevicesPerSite {
			addf("site %q: %d devices exceeds the %d ceiling", site.Name, total, maxDevicesPerSite)
			continue // do not materialize the device namespace
		}
		if site.Poll <= 0 {
			addf("site %q: poll must be positive", site.Name)
		}
		if site.AdvanceEvery < 0 {
			addf("site %q: advance_every must not be negative", site.Name)
		}
		for _, d := range site.DeviceNames() {
			devices[site.Name+"/"+d] = true
		}
	}

	containers := map[string]bool{}
	containerList := "(none: replica counts invalid)"
	if s.Grid.Collectors <= maxReplicas && s.Grid.Analyzers <= maxReplicas &&
		s.Grid.Classifiers <= maxReplicas {
		names := s.ContainerNames()
		for _, c := range names {
			containers[c] = true
		}
		containerList = strings.Join(names, ",")
	}
	seenFaults := map[string]bool{}
	for _, f := range s.Chaos {
		label := f.Name
		if label == "" {
			addf("chaos fault with empty name")
			label = "?"
		}
		if seenFaults[label] {
			addf("duplicate chaos fault %q", label)
		}
		seenFaults[label] = true
		if f.After < 0 {
			addf("chaos fault %q: after must not be negative", label)
		}
		switch f.Action {
		case ChaosDevice, ChaosClear:
			site, dev, ok := strings.Cut(f.Target, "/")
			if !ok || site == "" || dev == "" {
				addf("chaos fault %q: target must be 'site/device', got %q", label, f.Target)
			} else if !devices[f.Target] {
				addf("chaos fault %q: dangling target %q (no such device in any site)", label, f.Target)
			}
			if _, ok := deviceFaults[f.Kind]; !ok {
				addf("chaos fault %q: unknown device fault kind %q (cpu-pegged|disk-full|mem-leak|link-down|proc-storm)", label, f.Kind)
			}
		case ChaosDetach, ChaosReattach, ChaosDrop:
			if !containers[f.Target] {
				addf("chaos fault %q: dangling target %q (no such container; this spec deploys %s)",
					label, f.Target, containerList)
			}
			if s.Grid.TCP {
				addf("chaos fault %q: network faults (%s) need the in-process transport; remove 'tcp: true'", label, f.Action)
			}
			if f.Action == ChaosDrop && (f.Percent <= 0 || f.Percent > 100) {
				addf("chaos fault %q: drop percent must be in (0, 100], got %g", label, f.Percent)
			}
		case ChaosHeal:
			if f.Target != "" {
				addf("chaos fault %q: heal takes no target", label)
			}
			if s.Grid.TCP {
				addf("chaos fault %q: network faults (heal) need the in-process transport; remove 'tcp: true'", label)
			}
		case "":
			addf("chaos fault %q: action is required (device|clear|detach|reattach|drop|heal)", label)
		default:
			addf("chaos fault %q: unknown action %q (device|clear|detach|reattach|drop|heal)", label, f.Action)
		}
	}
	return errs.asError()
}
