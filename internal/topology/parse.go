package topology

import (
	"fmt"
	"strconv"
	"strings"
	"time"
)

// The spec format is a deliberately small indented subset of
// "key: value" lines — hand-rolled, no dependencies:
//
//	name: quickstart
//	grid:
//	  collectors: 3
//	  analyzers: 2
//	site site1:
//	  hosts: 1
//	  seed: 42
//	  poll: 1s
//	rules: |
//	  rule "hot-cpu" level 1 category cpu severity critical {
//	      when latest(cpu.util) > 90
//	      then alert "CPU above 90% on {device}"
//	  }
//	chaos:
//	  fault peg:
//	    after: 0s
//	    action: device
//	    target: site1/host-01
//	    kind: cpu-pegged
//
// Rules: two-part structure only (sections contain keys or deeper
// sections), indentation is spaces (tabs are an error), full-line `#`
// comments, and `key: |` starts a literal block holding every deeper
// line verbatim (dedented to the first content line). The parser never
// stops at the first problem: it records every syntax error with its
// line number and keeps going, so a spec with three mistakes reports
// all three.

// ErrorList collects every problem one pass found. It is the error
// type Parse, Validate and Load return, so callers can count and
// enumerate individual findings.
type ErrorList []error

// Error joins the findings, one per line.
func (e ErrorList) Error() string {
	parts := make([]string, len(e))
	for i, err := range e {
		parts[i] = err.Error()
	}
	return strings.Join(parts, "\n")
}

// Unwrap exposes the individual errors to errors.Is/As.
func (e ErrorList) Unwrap() []error { return e }

// errf appends a line-tagged error.
func (e *ErrorList) errf(line int, format string, args ...any) {
	*e = append(*e, fmt.Errorf("spec line %d: %s", line, fmt.Sprintf(format, args...)))
}

// asError returns nil for an empty list, the list otherwise.
func (e ErrorList) asError() error {
	if len(e) == 0 {
		return nil
	}
	return e
}

// node is one parsed "key: value" line; sections carry children,
// literal blocks carry their dedented text.
type node struct {
	key      string
	value    string // scalar value ("" for sections and literals)
	lit      string // literal block content (value was "|")
	isLit    bool
	line     int
	indent   int
	children []*node
}

// child returns the first child with the key, if any.
func (n *node) child(key string) (*node, bool) {
	for _, c := range n.children {
		if c.key == key {
			return c, true
		}
	}
	return nil, false
}

// parseTree builds the raw section tree, collecting syntax errors.
func parseTree(src string) (*node, ErrorList) {
	var errs ErrorList
	root := &node{indent: -1}
	stack := []*node{root}
	lines := strings.Split(src, "\n")
	for i := 0; i < len(lines); i++ {
		line := lines[i]
		lineno := i + 1
		trimmed := strings.TrimLeft(line, " ")
		if trimmed == "" || strings.HasPrefix(trimmed, "#") {
			continue
		}
		indent := len(line) - len(trimmed)
		if strings.HasPrefix(trimmed, "\t") || strings.Contains(line[:indent+1], "\t") {
			errs.errf(lineno, "tab in indentation; use spaces")
			continue
		}
		// Unwind to this line's parent section.
		for len(stack) > 1 && stack[len(stack)-1].indent >= indent {
			stack = stack[:len(stack)-1]
		}
		parent := stack[len(stack)-1]
		key, value, ok := strings.Cut(trimmed, ":")
		if !ok {
			errs.errf(lineno, "expected 'key: value' or 'key:', got %q", strings.TrimSpace(trimmed))
			continue
		}
		key = strings.TrimSpace(key)
		value = strings.TrimSpace(value)
		if key == "" {
			errs.errf(lineno, "empty key")
			continue
		}
		n := &node{key: key, value: value, line: lineno, indent: indent}
		parent.children = append(parent.children, n)
		switch value {
		case "|":
			n.value = ""
			n.isLit = true
			var block []string
			j := i + 1
			for ; j < len(lines); j++ {
				bl := lines[j]
				bt := strings.TrimLeft(bl, " ")
				if bt == "" {
					block = append(block, "")
					continue
				}
				if len(bl)-len(bt) <= indent {
					break
				}
				block = append(block, bl)
			}
			i = j - 1
			n.lit = dedent(block)
		case "":
			stack = append(stack, n)
		}
	}
	return root, errs
}

// dedent strips the common leading-space prefix set by the first
// non-blank line, and trailing blank lines.
func dedent(lines []string) string {
	for len(lines) > 0 && lines[len(lines)-1] == "" {
		lines = lines[:len(lines)-1]
	}
	cut := -1
	for _, l := range lines {
		if l == "" {
			continue
		}
		cut = len(l) - len(strings.TrimLeft(l, " "))
		break
	}
	if cut <= 0 {
		return strings.Join(lines, "\n")
	}
	out := make([]string, len(lines))
	for i, l := range lines {
		if len(l) >= cut && strings.TrimSpace(l[:cut]) == "" {
			out[i] = l[cut:]
		} else {
			out[i] = strings.TrimLeft(l, " ")
		}
	}
	return strings.Join(out, "\n")
}

// Parse reads spec source into a Spec, reporting every syntax and
// structural error it finds (an ErrorList). The returned Spec is the
// best-effort mapping even when errors are present, so validation can
// still enumerate further problems.
func Parse(src string) (*Spec, error) {
	root, errs := parseTree(src)
	spec := NewSpec("")
	for _, n := range root.children {
		switch {
		case n.key == "name":
			spec.Name = scalar(n, &errs)
		case n.key == "grid":
			section(n, &errs)
			parseGrid(n, spec, &errs)
		case strings.HasPrefix(n.key, "site ") || n.key == "site":
			name := strings.TrimSpace(strings.TrimPrefix(n.key, "site"))
			if name == "" {
				errs.errf(n.line, "site needs a name: 'site <name>:'")
			}
			section(n, &errs)
			spec.Sites = append(spec.Sites, parseSite(n, name, &errs))
		case n.key == "rules":
			spec.Rules = literal(n, &errs)
		case n.key == "local_rules":
			spec.LocalRules = literal(n, &errs)
		case n.key == "chaos":
			section(n, &errs)
			parseChaos(n, spec, &errs)
		default:
			errs.errf(n.line, "unknown key %q", n.key)
		}
	}
	return spec, errs.asError()
}

// scalar insists the node is a plain "key: value" line.
func scalar(n *node, errs *ErrorList) string {
	if len(n.children) > 0 || n.isLit {
		errs.errf(n.line, "%s: expected a scalar value, got a section", n.key)
		return ""
	}
	if n.value == "" {
		errs.errf(n.line, "%s: missing value", n.key)
	}
	return n.value
}

// section insists the node is a "key:" header with children.
func section(n *node, errs *ErrorList) {
	if n.value != "" {
		errs.errf(n.line, "%s: expected a section ('%s:' with indented lines), got value %q", n.key, n.key, n.value)
	}
}

// literal insists the node is a "key: |" block.
func literal(n *node, errs *ErrorList) string {
	if !n.isLit {
		errs.errf(n.line, "%s: expected a literal block ('%s: |')", n.key, n.key)
		return ""
	}
	return n.lit
}

func parseGrid(n *node, spec *Spec, errs *ErrorList) {
	for _, c := range n.children {
		switch c.key {
		case "collectors":
			spec.Grid.Collectors = intVal(c, errs)
		case "analyzers":
			spec.Grid.Analyzers = intVal(c, errs)
		case "classifiers":
			spec.Grid.Classifiers = intVal(c, errs)
		case "reporters":
			spec.Grid.Reporters = intVal(c, errs)
		case "store_shards":
			spec.Grid.StoreShards = intVal(c, errs)
		case "scheduler":
			spec.Grid.Scheduler = scalar(c, errs)
		case "negotiated":
			spec.Grid.Negotiated = boolVal(c, errs)
		case "bid_window":
			spec.Grid.BidWindow = durVal(c, errs)
		case "wire":
			spec.Grid.Wire = scalar(c, errs)
		case "flush_window":
			spec.Grid.FlushWindow = durVal(c, errs)
		case "community":
			spec.Grid.Community = scalar(c, errs)
		case "tcp":
			spec.Grid.TCP = boolVal(c, errs)
		default:
			errs.errf(c.line, "unknown grid key %q", c.key)
		}
	}
}

func parseSite(n *node, name string, errs *ErrorList) SiteSpec {
	site := newSite(name)
	for _, c := range n.children {
		switch c.key {
		case "hosts":
			site.Hosts = intVal(c, errs)
		case "routers":
			site.Routers = intVal(c, errs)
		case "switches":
			site.Switches = intVal(c, errs)
		case "router_ifs":
			site.RouterIfs = intVal(c, errs)
		case "switch_ports":
			site.SwitchPorts = intVal(c, errs)
		case "seed":
			site.Seed = int64(intVal(c, errs))
		case "poll":
			site.Poll = durVal(c, errs)
		case "advance_every":
			site.AdvanceEvery = durVal(c, errs)
		default:
			errs.errf(c.line, "unknown site key %q", c.key)
		}
	}
	return site
}

func parseChaos(n *node, spec *Spec, errs *ErrorList) {
	for _, c := range n.children {
		name := strings.TrimSpace(strings.TrimPrefix(c.key, "fault"))
		if !strings.HasPrefix(c.key, "fault ") {
			errs.errf(c.line, "chaos entries are 'fault <name>:' sections, got %q", c.key)
			continue
		}
		section(c, errs)
		entry := ChaosEntry{Name: name}
		for _, f := range c.children {
			switch f.key {
			case "after":
				entry.After = durVal(f, errs)
			case "action":
				entry.Action = scalar(f, errs)
			case "target":
				entry.Target = scalar(f, errs)
			case "kind":
				entry.Kind = scalar(f, errs)
			case "percent":
				entry.Percent = floatVal(f, errs)
			case "seed":
				entry.Seed = int64(intVal(f, errs))
			default:
				errs.errf(f.line, "unknown fault key %q", f.key)
			}
		}
		spec.Chaos = append(spec.Chaos, entry)
	}
}

func intVal(n *node, errs *ErrorList) int {
	s := scalar(n, errs)
	if s == "" {
		return 0
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		errs.errf(n.line, "%s: not an integer: %q", n.key, s)
		return 0
	}
	return v
}

func boolVal(n *node, errs *ErrorList) bool {
	s := scalar(n, errs)
	switch s {
	case "true", "yes", "on":
		return true
	case "false", "no", "off", "":
		return false
	}
	errs.errf(n.line, "%s: not a boolean: %q", n.key, s)
	return false
}

func durVal(n *node, errs *ErrorList) time.Duration {
	s := scalar(n, errs)
	if s == "" {
		return 0
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		errs.errf(n.line, "%s: not a duration: %q", n.key, s)
		return 0
	}
	return d
}

func floatVal(n *node, errs *ErrorList) float64 {
	s := scalar(n, errs)
	if s == "" {
		return 0
	}
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		errs.errf(n.line, "%s: not a number: %q", n.key, s)
		return 0
	}
	return v
}

// Load parses and validates spec source in one pass, reporting every
// problem from both stages together. On success the returned spec has
// defaults applied and is ready to Deploy.
func Load(src string) (*Spec, error) {
	spec, perr := Parse(src)
	var errs ErrorList
	if perr != nil {
		errs = append(errs, perr.(ErrorList)...)
	}
	if verr := spec.Validate(); verr != nil {
		errs = append(errs, verr.(ErrorList)...)
	}
	if err := errs.asError(); err != nil {
		return nil, err
	}
	return spec, nil
}
