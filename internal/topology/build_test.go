package topology

import (
	"context"
	"strings"
	"testing"
	"time"
)

// liftecycleSpec is a small deployable topology driven manually by the
// test (no advance_every), with a chaos entry that fires at deploy.
const lifecycleSpec = `
name: lifecycle
grid:
  collectors: 2
  analyzers: 2
site s1:
  hosts: 2
  seed: 42
  poll: 1h
rules: |
  rule "hot-cpu" level 1 category cpu severity critical {
      when latest(cpu.util) > 90
      then alert "CPU above 90% on {device}"
  }
chaos:
  fault peg:
    after: 0s
    action: device
    target: s1/host-01
    kind: cpu-pegged
`

// TestDeployLifecycle is the end-to-end pass the ISSUE demands:
// deploy a spec, check the census, watch the chaos-injected fault turn
// into an alert, destroy in order, and destroy again idempotently.
func TestDeployLifecycle(t *testing.T) {
	spec, err := Load(lifecycleSpec)
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	dep, err := Deploy(spec, Options{ErrorLog: func(err error) { t.Log("deploy:", err) }})
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	defer dep.Destroy()

	// Census: exactly the containers the spec enumerates, each carrying
	// agents, with the sites' device counts.
	st := dep.Status()
	if st.State != "running" || st.Name != "lifecycle" || st.Site != "s1" {
		t.Fatalf("status = %+v", st)
	}
	want := spec.ContainerNames()
	if len(st.Containers) != len(want) {
		t.Fatalf("containers = %d, want %d", len(st.Containers), len(want))
	}
	for i, c := range st.Containers {
		if c.Name != want[i] {
			t.Errorf("container[%d] = %q, want %q", i, c.Name, want[i])
		}
		if len(c.Agents) == 0 {
			t.Errorf("container %s has no agents", c.Name)
		}
		if c.Addr == "" {
			t.Errorf("container %s reports no address", c.Name)
		}
	}
	if len(st.Sites) != 1 || st.Sites[0].Devices != 2 {
		t.Fatalf("sites = %+v", st.Sites)
	}
	if !st.Healthy {
		t.Errorf("deployment should start healthy: %+v", st.Health)
	}

	// The chaos entry pegged host-01 at deploy; drive the simulation
	// and a collection cycle, and the rule must fire.
	waitForFault(t, dep, "peg")
	fleet, ok := dep.Fleet("s1")
	if !ok {
		t.Fatal("no fleet for s1")
	}
	fleet.Advance(5)
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	if err := dep.Grid().CollectNow(ctx); err != nil {
		t.Fatalf("CollectNow: %v", err)
	}
	dep.Grid().WaitIdle(10 * time.Second)
	alert, ok := dep.Grid().Interface().WaitAlert(ctx, nil)
	if !ok {
		t.Fatal("no alert from the pegged host")
	}
	if alert.Rule != "hot-cpu" || alert.Device != "host-01" {
		t.Errorf("alert = %+v", alert)
	}
	if st := dep.Status(); st.AlertCount == 0 || len(st.Faults) != 1 || st.Faults[0].Name != "peg" {
		t.Errorf("status should carry alerts and the applied fault: %+v", st)
	}

	// Ordered teardown, then idempotent repeat.
	if err := dep.Destroy(); err != nil {
		t.Fatalf("Destroy: %v", err)
	}
	if !dep.Destroyed() {
		t.Fatal("Destroyed() = false after Destroy")
	}
	if err := dep.Destroy(); err != nil {
		t.Fatalf("second Destroy: %v", err)
	}
	st = dep.Status()
	if st.State != "destroyed" || len(st.Containers) != 0 {
		t.Fatalf("post-destroy status = %+v", st)
	}
}

// waitForFault blocks until the named chaos entry has been applied.
func waitForFault(t *testing.T, dep *Deployment, name string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		for _, f := range dep.Status().Faults {
			if f.Name == name {
				if f.Error != "" {
					t.Fatalf("chaos %s failed: %s", name, f.Error)
				}
				return
			}
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("chaos entry %s never applied", name)
}

func TestDeployRejectsInvalidSpec(t *testing.T) {
	spec := NewSpec("bad") // no sites
	if _, err := Deploy(spec, Options{}); err == nil {
		t.Fatal("Deploy accepted a spec with no sites")
	}
}

func TestLoadReportsParseAndValidateTogether(t *testing.T) {
	// One syntax error (tab) and one semantic error (no sites) in the
	// same report.
	_, err := Load("name: x\n\tbroken: 1\n")
	if err == nil {
		t.Fatal("expected errors")
	}
	msg := err.Error()
	if !strings.Contains(msg, "tab") || !strings.Contains(msg, "at least one site") {
		t.Fatalf("want both stages' findings, got:\n%v", err)
	}
}
