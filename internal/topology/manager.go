package topology

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync"

	"agentgrid/internal/report"
)

// Manager is the control plane's deployment slot: at most one live
// Deployment, driven either programmatically (agentgridd -spec) or
// over HTTP (gridctl deploy/status/destroy against the /topology
// endpoint it serves). Attach it to a report.Server and the same
// listener carries the grid's reporting endpoints once a deployment
// is live — and the 503 not-yet-serving contract before that.
type Manager struct {
	opts Options

	mu        sync.Mutex
	dep       *Deployment // guarded by mu
	deploying bool        // guarded by mu

	srv *report.Server // set once by AttachServer, before serving
}

// ErrAlreadyDeployed rejects a deploy while one topology is live.
var ErrAlreadyDeployed = errors.New("topology: a deployment is already running (destroy it first)")

// NewManager returns an empty manager.
func NewManager(opts Options) *Manager {
	return &Manager{opts: opts}
}

// AttachServer registers the manager as the server's /topology
// handler and wires deployments into the server's interface-grid slot
// as they come and go.
func (m *Manager) AttachServer(s *report.Server) {
	m.srv = s
	s.SetTopologyHandler(m)
}

// Deploy parses, validates and deploys spec source. Exactly one
// deployment may be live; a second Deploy fails with
// ErrAlreadyDeployed until Destroy.
func (m *Manager) Deploy(src string) (*Deployment, error) {
	m.mu.Lock()
	if m.dep != nil || m.deploying {
		m.mu.Unlock()
		return nil, ErrAlreadyDeployed
	}
	m.deploying = true
	m.mu.Unlock()

	// Parse + deploy outside the lock: deployment binds sockets and
	// starts containers, and status requests must not stall behind it.
	dep, err := func() (*Deployment, error) {
		spec, err := Load(src)
		if err != nil {
			return nil, err
		}
		return Deploy(spec, m.opts)
	}()

	m.mu.Lock()
	m.deploying = false
	if err != nil {
		m.mu.Unlock()
		return nil, err
	}
	m.dep = dep
	m.mu.Unlock()
	if m.srv != nil {
		m.srv.SetInterface(dep.Grid().Interface())
	}
	return dep, nil
}

// Current returns the live deployment, if any.
func (m *Manager) Current() (*Deployment, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dep, m.dep != nil
}

// Status snapshots the live deployment's census.
func (m *Manager) Status() (*Status, bool) {
	dep, ok := m.Current()
	if !ok {
		return nil, false
	}
	return dep.Status(), true
}

// Destroy tears down the live deployment. With nothing deployed it is
// a no-op reporting destroyed=false — repeated destroys are safe, the
// same idempotence the Deployment handle itself guarantees.
func (m *Manager) Destroy() (bool, error) {
	m.mu.Lock()
	dep := m.dep
	m.dep = nil
	m.mu.Unlock()
	if dep == nil {
		return false, nil
	}
	if m.srv != nil {
		m.srv.SetInterface(nil)
	}
	return true, dep.Destroy()
}

// Close destroys any live deployment (process shutdown path).
func (m *Manager) Close() error {
	_, err := m.Destroy()
	return err
}

// maxSpecBytes bounds a POSTed spec body.
const maxSpecBytes = 1 << 20

// ServeHTTP is the /topology lifecycle endpoint:
//
//	GET    /topology?format=json|text|html   census (503 + JSON before deploy)
//	POST   /topology                         deploy the spec in the body
//	DELETE /topology                         destroy the live deployment
func (m *Manager) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		m.handleGet(w, r)
	case http.MethodPost:
		m.handleDeploy(w, r)
	case http.MethodDelete:
		m.handleDestroy(w, r)
	default:
		w.Header().Set("Allow", "GET, POST, DELETE")
		writeJSONError(w, http.StatusMethodNotAllowed, fmt.Sprintf("method %s not allowed", r.Method))
	}
}

func (m *Manager) handleGet(w http.ResponseWriter, r *http.Request) {
	st, ok := m.Status()
	if !ok {
		// The /readyz contract: not serving yet is 503 with a JSON
		// body saying so, never an empty 200 or a 404.
		report.WriteNotServing(w, "no topology deployed")
		return
	}
	writeStatus(w, r.URL.Query().Get("format"), st)
}

func (m *Manager) handleDeploy(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxSpecBytes+1))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(body) > maxSpecBytes {
		writeJSONError(w, http.StatusRequestEntityTooLarge, fmt.Sprintf("spec exceeds %d bytes", maxSpecBytes))
		return
	}
	dep, err := m.Deploy(string(body))
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, ErrAlreadyDeployed) {
			code = http.StatusConflict
		}
		writeJSONError(w, code, err.Error())
		return
	}
	writeStatus(w, r.URL.Query().Get("format"), dep.Status())
}

func (m *Manager) handleDestroy(w http.ResponseWriter, _ *http.Request) {
	destroyed, err := m.Destroy()
	out := struct {
		Destroyed bool   `json:"destroyed"`
		Error     string `json:"error,omitempty"`
	}{Destroyed: destroyed}
	if err != nil {
		out.Error = err.Error()
	}
	w.Header().Set("Content-Type", "application/json")
	body, merr := json.MarshalIndent(out, "", "  ")
	if merr != nil {
		writeJSONError(w, http.StatusInternalServerError, merr.Error())
		return
	}
	w.Write(body)
}

// writeStatus renders a census in the requested format (json default).
func writeStatus(w http.ResponseWriter, format string, st *Status) {
	switch format {
	case "", "json":
		body, err := json.MarshalIndent(st, "", "  ")
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
	case "text":
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, RenderText(st))
	case "html":
		body, err := RenderHTML(st)
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
		w.Header().Set("Content-Type", "text/html; charset=utf-8")
		w.Write(body)
	default:
		writeJSONError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q (json|text|html)", format))
	}
}

// writeJSONError writes a JSON error body with the given status.
func writeJSONError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	body, err := json.Marshal(struct {
		Error string `json:"error"`
	}{Error: msg})
	if err != nil {
		return
	}
	w.Write(body)
}
