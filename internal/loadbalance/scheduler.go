// Package loadbalance implements the processor grid's task-placement
// strategies. The paper (§3.5) distributes analysis work on three
// principles — containers with the knowledge to process it, with the
// computational capacity to process it, and that are idle — implemented
// here as the Capability scheduler. Round-robin, random and least-loaded
// baselines exist for the ablation study (experiment X3), and a
// Negotiated scheduler delegates the choice to contract-net bidding.
package loadbalance

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"sync"

	"agentgrid/internal/directory"
)

// Task describes one unit of analysis work to place.
type Task struct {
	// ID names the task.
	ID string
	// Category is the knowledge the task requires (a metric category
	// such as "cpu" or "disk"; empty means any analysis container).
	Category string
	// Cost is the task's estimated cost in relative units.
	Cost float64
}

// Scheduler picks a container for a task from directory candidates.
type Scheduler interface {
	// Name identifies the strategy in benchmarks and reports.
	Name() string
	// Pick selects one of the candidates. The candidate list is never
	// reordered by the caller between calls.
	Pick(task Task, candidates []directory.Registration) (directory.Registration, error)
}

// ErrNoCandidates means the candidate list was empty (or no candidate
// passed the scheduler's filters and fallbacks).
var ErrNoCandidates = errors.New("loadbalance: no candidates")

// ---- Round robin ----

// RoundRobin cycles through candidates in name order. Safe for
// concurrent use.
type RoundRobin struct {
	mu sync.Mutex
	n  uint64
}

// NewRoundRobin returns a round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Scheduler.
func (r *RoundRobin) Name() string { return "round-robin" }

// Pick implements Scheduler.
func (r *RoundRobin) Pick(_ Task, candidates []directory.Registration) (directory.Registration, error) {
	if len(candidates) == 0 {
		return directory.Registration{}, ErrNoCandidates
	}
	sorted := sortByName(candidates)
	r.mu.Lock()
	i := r.n % uint64(len(sorted))
	r.n++
	r.mu.Unlock()
	return sorted[i], nil
}

// ---- Random ----

// Random picks uniformly with a seeded source (deterministic for a given
// seed and call sequence). Safe for concurrent use.
type Random struct {
	mu  sync.Mutex
	rng *rand.Rand
}

// NewRandom returns a seeded random scheduler.
func NewRandom(seed int64) *Random {
	return &Random{rng: rand.New(rand.NewSource(seed))}
}

// Name implements Scheduler.
func (r *Random) Name() string { return "random" }

// Pick implements Scheduler.
func (r *Random) Pick(_ Task, candidates []directory.Registration) (directory.Registration, error) {
	if len(candidates) == 0 {
		return directory.Registration{}, ErrNoCandidates
	}
	sorted := sortByName(candidates)
	r.mu.Lock()
	i := r.rng.Intn(len(sorted))
	r.mu.Unlock()
	return sorted[i], nil
}

// ---- Least loaded ----

// LeastLoaded picks the candidate with the lowest reported load,
// breaking ties by name.
type LeastLoaded struct{}

// NewLeastLoaded returns a least-loaded scheduler.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Scheduler.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Scheduler.
func (*LeastLoaded) Pick(_ Task, candidates []directory.Registration) (directory.Registration, error) {
	if len(candidates) == 0 {
		return directory.Registration{}, ErrNoCandidates
	}
	best := candidates[0]
	for _, c := range candidates[1:] {
		if c.Load < best.Load || (c.Load == best.Load && c.Container < best.Container) {
			best = c
		}
	}
	return best, nil
}

// ---- Capability (the paper's three principles) ----

// Capability implements §3.5 exactly: (1) keep only containers with the
// knowledge (the task's category among their analysis capabilities);
// (2) among those, prefer idle containers (load under IdleThreshold);
// (3) pick the one with the most spare computational capacity,
// CPUCapacity × (1 − Load). When no container has the knowledge, any
// analysis container may take the task (rules travel with it).
type Capability struct {
	// IdleThreshold is the load under which a container counts as idle
	// (default 0.5 when zero).
	IdleThreshold float64
}

// NewCapability returns a capability scheduler with the default idle
// threshold.
func NewCapability() *Capability { return &Capability{IdleThreshold: 0.5} }

// Name implements Scheduler.
func (*Capability) Name() string { return "capability" }

// Pick implements Scheduler.
func (c *Capability) Pick(task Task, candidates []directory.Registration) (directory.Registration, error) {
	if len(candidates) == 0 {
		return directory.Registration{}, ErrNoCandidates
	}
	threshold := c.IdleThreshold
	if threshold == 0 {
		threshold = 0.5
	}
	// Principle 1: knowledge.
	pool := filterCapable(candidates, task.Category)
	if len(pool) == 0 {
		pool = candidates
	}
	// Principle 3 (idleness) narrows the pool when possible.
	if idle := filterIdle(pool, threshold); len(idle) > 0 {
		pool = idle
	}
	// Principle 2: most spare capacity wins; ties break by name.
	best := pool[0]
	bestSpare := spareCapacity(best)
	for _, cand := range pool[1:] {
		s := spareCapacity(cand)
		if s > bestSpare || (s == bestSpare && cand.Container < best.Container) {
			best = cand
			bestSpare = s
		}
	}
	return best, nil
}

func filterCapable(candidates []directory.Registration, category string) []directory.Registration {
	if category == "" {
		return candidates
	}
	var out []directory.Registration
	for _, c := range candidates {
		if c.HasCapability(directory.ServiceAnalysis, category) {
			out = append(out, c)
		}
	}
	return out
}

func filterIdle(candidates []directory.Registration, threshold float64) []directory.Registration {
	var out []directory.Registration
	for _, c := range candidates {
		if c.Load < threshold {
			out = append(out, c)
		}
	}
	return out
}

func spareCapacity(r directory.Registration) float64 {
	return r.Profile.CPUCapacity * (1 - r.Load)
}

func sortByName(candidates []directory.Registration) []directory.Registration {
	out := append([]directory.Registration(nil), candidates...)
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	return out
}

// ---- Registry ----

// New constructs a scheduler by strategy name; seed feeds the random
// strategy. Recognized names: "round-robin", "random", "least-loaded",
// "capability".
func New(name string, seed int64) (Scheduler, error) {
	switch name {
	case "round-robin":
		return NewRoundRobin(), nil
	case "random":
		return NewRandom(seed), nil
	case "least-loaded":
		return NewLeastLoaded(), nil
	case "capability":
		return NewCapability(), nil
	default:
		return nil, fmt.Errorf("loadbalance: unknown strategy %q", name)
	}
}

// Strategies lists the built-in strategy names (ablation sweep order).
func Strategies() []string {
	return []string{"round-robin", "random", "least-loaded", "capability"}
}
