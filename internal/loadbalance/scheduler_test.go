package loadbalance

import (
	"errors"
	"testing"
	"testing/quick"

	"agentgrid/internal/directory"
)

func cand(name string, cpu, load float64, caps ...string) directory.Registration {
	return directory.Registration{
		Container: name,
		Addr:      "inproc://" + name,
		Profile:   directory.ResourceProfile{CPUCapacity: cpu, NetCapacity: 100, DiscCapacity: 100},
		Services:  []directory.ServiceDesc{{Type: directory.ServiceAnalysis, Capabilities: caps}},
		Load:      load,
	}
}

func TestAllSchedulersRejectEmpty(t *testing.T) {
	for _, name := range Strategies() {
		s, err := New(name, 1)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Pick(Task{ID: "t"}, nil); !errors.Is(err, ErrNoCandidates) {
			t.Errorf("%s: empty candidates = %v", name, err)
		}
	}
}

func TestNewUnknownStrategy(t *testing.T) {
	if _, err := New("astrology", 1); err == nil {
		t.Fatal("unknown strategy accepted")
	}
}

func TestRoundRobinCycles(t *testing.T) {
	s := NewRoundRobin()
	cands := []directory.Registration{cand("b", 1, 0), cand("a", 1, 0), cand("c", 1, 0)}
	var picks []string
	for i := 0; i < 6; i++ {
		got, err := s.Pick(Task{}, cands)
		if err != nil {
			t.Fatal(err)
		}
		picks = append(picks, got.Container)
	}
	want := []string{"a", "b", "c", "a", "b", "c"}
	for i := range want {
		if picks[i] != want[i] {
			t.Fatalf("picks = %v", picks)
		}
	}
}

func TestRandomDeterministicPerSeed(t *testing.T) {
	cands := []directory.Registration{cand("a", 1, 0), cand("b", 1, 0), cand("c", 1, 0)}
	run := func(seed int64) []string {
		s := NewRandom(seed)
		var out []string
		for i := 0; i < 10; i++ {
			got, _ := s.Pick(Task{}, cands)
			out = append(out, got.Container)
		}
		return out
	}
	a, b := run(7), run(7)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed diverged")
		}
	}
	// All candidates eventually chosen.
	seen := map[string]bool{}
	s := NewRandom(3)
	for i := 0; i < 100; i++ {
		got, _ := s.Pick(Task{}, cands)
		seen[got.Container] = true
	}
	if len(seen) != 3 {
		t.Fatalf("random never chose some candidate: %v", seen)
	}
}

func TestLeastLoaded(t *testing.T) {
	s := NewLeastLoaded()
	cands := []directory.Registration{
		cand("busy", 100, 0.9),
		cand("medium", 100, 0.5),
		cand("idle", 100, 0.1),
	}
	got, err := s.Pick(Task{}, cands)
	if err != nil || got.Container != "idle" {
		t.Fatalf("Pick = %v, %v", got.Container, err)
	}
	// Tie breaks by name.
	tie := []directory.Registration{cand("zeta", 1, 0.3), cand("alpha", 1, 0.3)}
	got, _ = s.Pick(Task{}, tie)
	if got.Container != "alpha" {
		t.Fatalf("tie pick = %v", got.Container)
	}
}

func TestCapabilityPrefersKnowledge(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		cand("disk-expert", 50, 0.1, "disk"),
		cand("cpu-expert", 500, 0.1, "cpu"),
	}
	got, err := s.Pick(Task{ID: "t", Category: "disk"}, cands)
	if err != nil || got.Container != "disk-expert" {
		t.Fatalf("Pick = %v, %v (capability ignored)", got.Container, err)
	}
}

func TestCapabilityFallsBackWhenNoExpert(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		cand("a", 100, 0.2, "cpu"),
		cand("b", 200, 0.2, "memory"),
	}
	got, err := s.Pick(Task{Category: "traffic"}, cands)
	if err != nil {
		t.Fatal(err)
	}
	// Nobody knows traffic: most spare capacity wins.
	if got.Container != "b" {
		t.Fatalf("fallback pick = %v", got.Container)
	}
}

func TestCapabilityPrefersIdle(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		// Huge but busy machine vs small idle one: idleness filter keeps
		// only the idle machine.
		cand("huge-busy", 1000, 0.9, "cpu"),
		cand("small-idle", 10, 0.1, "cpu"),
	}
	got, _ := s.Pick(Task{Category: "cpu"}, cands)
	if got.Container != "small-idle" {
		t.Fatalf("idle preference broken: %v", got.Container)
	}
}

func TestCapabilitySpareCapacityAmongIdle(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		cand("small", 10, 0.1, "cpu"),
		cand("big", 100, 0.2, "cpu"), // spare 80 vs 9
	}
	got, _ := s.Pick(Task{Category: "cpu"}, cands)
	if got.Container != "big" {
		t.Fatalf("spare-capacity pick = %v", got.Container)
	}
}

func TestCapabilityAllBusy(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		cand("a", 100, 0.95, "cpu"), // spare 5
		cand("b", 100, 0.8, "cpu"),  // spare 20
	}
	got, _ := s.Pick(Task{Category: "cpu"}, cands)
	if got.Container != "b" {
		t.Fatalf("all-busy pick = %v", got.Container)
	}
}

func TestCapabilityEmptyCategoryUsesAll(t *testing.T) {
	s := NewCapability()
	cands := []directory.Registration{
		cand("a", 10, 0.1, "cpu"),
		cand("b", 100, 0.1, "disk"),
	}
	got, _ := s.Pick(Task{}, cands)
	if got.Container != "b" {
		t.Fatalf("uncategorized pick = %v", got.Container)
	}
}

func TestCapabilityZeroThresholdDefaults(t *testing.T) {
	s := &Capability{} // zero value must behave like NewCapability
	cands := []directory.Registration{
		cand("busy", 1000, 0.9, "cpu"),
		cand("idle", 10, 0.1, "cpu"),
	}
	got, _ := s.Pick(Task{Category: "cpu"}, cands)
	if got.Container != "idle" {
		t.Fatalf("zero-value threshold pick = %v", got.Container)
	}
}

// Property: every scheduler always returns one of its candidates.
func TestSchedulersPickFromCandidatesProperty(t *testing.T) {
	f := func(seed int64, nCand uint8) bool {
		n := int(nCand%8) + 1
		cands := make([]directory.Registration, n)
		for i := range cands {
			cands[i] = cand(string(rune('a'+i)), float64(10+i*7), float64(i%4)*0.25, "cpu")
		}
		valid := map[string]bool{}
		for _, c := range cands {
			valid[c.Container] = true
		}
		for _, name := range Strategies() {
			s, _ := New(name, seed)
			for j := 0; j < 5; j++ {
				got, err := s.Pick(Task{ID: "t", Category: "cpu"}, cands)
				if err != nil || !valid[got.Container] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: round-robin distributes evenly — after k full cycles every
// candidate was picked exactly k times.
func TestRoundRobinFairnessProperty(t *testing.T) {
	f := func(nCand uint8, cycles uint8) bool {
		n := int(nCand%6) + 1
		k := int(cycles%5) + 1
		cands := make([]directory.Registration, n)
		for i := range cands {
			cands[i] = cand(string(rune('a'+i)), 1, 0)
		}
		s := NewRoundRobin()
		counts := map[string]int{}
		for i := 0; i < n*k; i++ {
			got, err := s.Pick(Task{}, cands)
			if err != nil {
				return false
			}
			counts[got.Container]++
		}
		for _, c := range counts {
			if c != k {
				return false
			}
		}
		return len(counts) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
