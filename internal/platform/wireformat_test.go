package platform

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/transport"
)

// TestMixedWireFormatContainers runs a legacy container that still
// speaks ACL1 (JSON frames) against an upgraded container on the
// default ACL2 binary format. Because readers dispatch per frame, the
// two interoperate with no negotiation — the rolling-upgrade story for
// a live grid.
func TestMixedWireFormatContainers(t *testing.T) {
	legacy, err := New(Config{Name: "c-legacy", Platform: "site1", Profile: testProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := legacy.AttachTCP("127.0.0.1:0", transport.WithWireFormat(acl.FormatJSON)); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { legacy.Stop() })

	modern, err := New(Config{Name: "c-modern", Platform: "site2", Profile: testProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := modern.AttachTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { modern.Stop() })

	oldAgent, err := legacy.SpawnAgent("old")
	if err != nil {
		t.Fatal(err)
	}
	newAgent, err := modern.SpawnAgent("new")
	if err != nil {
		t.Fatal(err)
	}

	// The modern agent answers every request; the legacy agent collects
	// the answer. Round trip = JSON frame out, binary frame back.
	atModern := make(chan *acl.Message, 1)
	atLegacy := make(chan *acl.Message, 1)
	newAgent.HandleFunc(agent.Selector{Performative: acl.Request}, func(ctx context.Context, a *agent.Agent, m *acl.Message) {
		atModern <- m
		reply := m.Reply(a.ID(), acl.Inform)
		reply.Content = []byte("pong from " + a.ID().Name)
		reply.Receivers[0].Addresses = []string{legacy.Addr()}
		if err := a.Send(ctx, reply); err != nil {
			t.Error(err)
		}
	})
	oldAgent.HandleFunc(agent.Selector{Performative: acl.Inform}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		atLegacy <- m
	})
	startContainer(t, legacy)
	startContainer(t, modern)

	rcv := newAgent.ID()
	rcv.Addresses = []string{modern.Addr()}
	err = oldAgent.Send(context.Background(), &acl.Message{
		Performative:   acl.Request,
		Receivers:      []acl.AID{rcv},
		Content:        []byte("ping"),
		ConversationID: "upgrade-1",
	})
	if err != nil {
		t.Fatal(err)
	}

	select {
	case m := <-atModern:
		if string(m.Content) != "ping" || m.Sender.Name != oldAgent.ID().Name {
			t.Fatalf("modern container got %+v", m)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("JSON-framed request never reached the binary container")
	}
	select {
	case m := <-atLegacy:
		if string(m.Content) != "pong from "+newAgent.ID().Name {
			t.Fatalf("legacy container got %q", m.Content)
		}
		if m.ConversationID != "upgrade-1" {
			t.Fatalf("conversation id lost across formats: %q", m.ConversationID)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("binary-framed reply never reached the JSON container")
	}

	if s := legacy.Stats(); s.Forwarded != 1 || s.DeliveredLocal != 1 || s.Dropped != 0 {
		t.Fatalf("legacy stats = %+v", s)
	}
	if s := modern.Stats(); s.Forwarded != 1 || s.DeliveredLocal != 1 || s.Dropped != 0 {
		t.Fatalf("modern stats = %+v", s)
	}
}
