package platform

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/transport"
)

var testProfile = directory.ResourceProfile{CPUCapacity: 10, NetCapacity: 10, DiscCapacity: 10}

func newTestContainer(t *testing.T, n *transport.InProcNetwork, name, platform string) *Container {
	t.Helper()
	c, err := New(Config{Name: name, Platform: platform, Profile: testProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInProc(n, "inproc://"+name); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Stop() })
	return c
}

func startContainer(t *testing.T, c *Container) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Platform: "p"}); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Config{Name: "c"}); err == nil {
		t.Error("empty platform accepted")
	}
}

func TestLocalDelivery(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")

	got := make(chan *acl.Message, 1)
	sender, err := c.SpawnAgent("sender")
	if err != nil {
		t.Fatal(err)
	}
	receiver, err := c.SpawnAgent("receiver")
	if err != nil {
		t.Fatal(err)
	}
	receiver.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		got <- m
	})
	startContainer(t, c)

	err = sender.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{receiver.ID()},
		Content:      []byte("local"),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Content) != "local" {
			t.Fatalf("content = %q", m.Content)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("local message never delivered")
	}
	if s := c.Stats(); s.DeliveredLocal != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestRemoteDeliveryViaAddresses(t *testing.T) {
	n := transport.NewInProcNetwork()
	c1 := newTestContainer(t, n, "c1", "site1")
	c2 := newTestContainer(t, n, "c2", "site2")

	sender, _ := c1.SpawnAgent("sender")
	receiver, _ := c2.SpawnAgent("receiver")
	got := make(chan *acl.Message, 1)
	receiver.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		got <- m
	})
	startContainer(t, c1)
	startContainer(t, c2)

	rcv := receiver.ID()
	rcv.Addresses = []string{c2.Addr()}
	err := sender.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{rcv},
		Content:      []byte("remote"),
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Content) != "remote" {
			t.Fatalf("content = %q", m.Content)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("remote message never delivered")
	}
	if s := c1.Stats(); s.Forwarded != 1 {
		t.Fatalf("c1 Stats = %+v", s)
	}
}

func TestRemoteDeliveryViaResolver(t *testing.T) {
	n := transport.NewInProcNetwork()
	c2 := newTestContainer(t, n, "c2", "site2")
	receiver, _ := c2.SpawnAgent("receiver")
	got := make(chan struct{}, 1)
	receiver.HandleFunc(agent.Selector{}, func(context.Context, *agent.Agent, *acl.Message) {
		got <- struct{}{}
	})
	startContainer(t, c2)

	c1, err := New(Config{
		Name: "c1", Platform: "site1", Profile: testProfile,
		Resolver: func(aid acl.AID) (string, error) {
			if aid.Platform() == "site2" {
				return c2.Addr(), nil
			}
			return "", fmt.Errorf("unknown platform %q", aid.Platform())
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AttachInProc(n, "inproc://c1"); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c1.Stop() })
	sender, _ := c1.SpawnAgent("sender")
	startContainer(t, c1)

	err = sender.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{receiver.ID()}, // no explicit address
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("resolver-routed message never delivered")
	}
}

func TestRouteNoRoute(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	sender, _ := c.SpawnAgent("sender")
	startContainer(t, c)
	err := sender.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{acl.NewAID("ghost", "elsewhere")},
	})
	if !errors.Is(err, ErrNoRoute) {
		t.Fatalf("Send = %v, want ErrNoRoute", err)
	}
	if s := c.Stats(); s.Dropped != 1 {
		t.Fatalf("Stats = %+v", s)
	}
}

func TestMulticastSplitsReceivers(t *testing.T) {
	n := transport.NewInProcNetwork()
	c1 := newTestContainer(t, n, "c1", "site1")
	c2 := newTestContainer(t, n, "c2", "site2")
	c3 := newTestContainer(t, n, "c3", "site3")

	sender, _ := c1.SpawnAgent("sender")
	got2 := make(chan *acl.Message, 1)
	got3 := make(chan *acl.Message, 1)
	r2, _ := c2.SpawnAgent("r2")
	r2.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) { got2 <- m })
	r3, _ := c3.SpawnAgent("r3")
	r3.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) { got3 <- m })
	for _, c := range []*Container{c1, c2, c3} {
		startContainer(t, c)
	}

	a2 := r2.ID()
	a2.Addresses = []string{c2.Addr()}
	a3 := r3.ID()
	a3.Addresses = []string{c3.Addr()}
	err := sender.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{a2, a3},
	})
	if err != nil {
		t.Fatal(err)
	}
	m2 := <-got2
	m3 := <-got3
	// Each hop must see only itself as receiver (no re-forward storms).
	if len(m2.Receivers) != 1 || m2.Receivers[0].Local() != "r2" {
		t.Fatalf("r2 got receivers %v", m2.Receivers)
	}
	if len(m3.Receivers) != 1 || m3.Receivers[0].Local() != "r3" {
		t.Fatalf("r3 got receivers %v", m3.Receivers)
	}
}

func TestSpawnDuplicateAndKill(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	if _, err := c.SpawnAgent("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SpawnAgent("a"); !errors.Is(err, ErrDupAgent) {
		t.Fatalf("dup spawn = %v", err)
	}
	if names := c.AgentNames(); len(names) != 1 || names[0] != "a" {
		t.Fatalf("AgentNames = %v", names)
	}
	if _, ok := c.Agent("a"); !ok {
		t.Fatal("Agent lookup failed")
	}
	if err := c.KillAgent("a"); err != nil {
		t.Fatal(err)
	}
	if err := c.KillAgent("a"); !errors.Is(err, ErrNoAgent) {
		t.Fatalf("double kill = %v", err)
	}
	if _, ok := c.Agent("a"); ok {
		t.Fatal("killed agent still present")
	}
}

func TestSpawnWhileRunning(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	startContainer(t, c)
	late, err := c.SpawnAgent("late")
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan struct{}, 1)
	late.HandleFunc(agent.Selector{}, func(context.Context, *agent.Agent, *acl.Message) {
		got <- struct{}{}
	})
	err = c.Route(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("x", "site1"),
		Receivers:    []acl.AID{late.ID()},
	})
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("late-spawned agent never ran")
	}
}

func TestStartWithoutTransport(t *testing.T) {
	c, _ := New(Config{Name: "c", Platform: "p", Profile: testProfile})
	if err := c.Start(context.Background()); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("Start = %v", err)
	}
	if c.Addr() != "" {
		t.Fatal("Addr before attach should be empty")
	}
}

func TestDoubleAttach(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	if err := c.AttachInProc(n, "inproc://other"); !errors.Is(err, ErrAlreadyBound) {
		t.Fatalf("second attach = %v", err)
	}
}

func TestLoadFuncClamped(t *testing.T) {
	c, _ := New(Config{Name: "c", Platform: "p", Profile: testProfile})
	if c.Load() != 0 {
		t.Fatal("default load not 0")
	}
	c.SetLoadFunc(func() float64 { return 0.4 })
	if c.Load() != 0.4 {
		t.Fatal("load func ignored")
	}
	c.SetLoadFunc(func() float64 { return 7 })
	if c.Load() != 1 {
		t.Fatal("load not clamped high")
	}
	c.SetLoadFunc(func() float64 { return -3 })
	if c.Load() != 0 {
		t.Fatal("load not clamped low")
	}
	c.SetLoadFunc(nil)
	if c.Load() != 0 {
		t.Fatal("nil load func not restored to default")
	}
}

func TestRegistration(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	c.SetLoadFunc(func() float64 { return 0.25 })
	reg := c.Registration([]directory.ServiceDesc{{Type: directory.ServiceAnalysis, Capabilities: []string{"cpu"}}})
	if reg.Container != "c1" || reg.Addr != "inproc://c1" || reg.Load != 0.25 {
		t.Fatalf("Registration = %+v", reg)
	}
	if !reg.HasCapability(directory.ServiceAnalysis, "cpu") {
		t.Fatal("services not carried")
	}
}

func TestTCPContainers(t *testing.T) {
	c1, err := New(Config{Name: "c1", Platform: "site1", Profile: testProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := c1.AttachTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c1.Stop()
	c2, err := New(Config{Name: "c2", Platform: "site2", Profile: testProfile})
	if err != nil {
		t.Fatal(err)
	}
	if err := c2.AttachTCP("127.0.0.1:0"); err != nil {
		t.Fatal(err)
	}
	defer c2.Stop()

	sender, _ := c1.SpawnAgent("sender")
	receiver, _ := c2.SpawnAgent("receiver")
	got := make(chan *acl.Message, 1)
	receiver.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) { got <- m })

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	c1.Start(ctx)
	c2.Start(ctx)

	rcv := receiver.ID()
	rcv.Addresses = []string{c2.Addr()}
	if err := sender.Send(ctx, &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{rcv},
		Content:      []byte("over tcp"),
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case m := <-got:
		if string(m.Content) != "over tcp" {
			t.Fatalf("content = %q", m.Content)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("tcp message never delivered")
	}
}

func TestInboundUnknownAgentDropped(t *testing.T) {
	n := transport.NewInProcNetwork()
	var errCount int
	c, _ := New(Config{
		Name: "c1", Platform: "site1", Profile: testProfile,
		ErrorLog: func(error) { errCount++ },
	})
	c.AttachInProc(n, "inproc://c1")
	t.Cleanup(func() { c.Stop() })
	startContainer(t, c)

	other := newTestContainer(t, n, "c2", "site2")
	s, _ := other.SpawnAgent("s")
	startContainer(t, other)

	rcv := acl.NewAID("nobody", "site1", "inproc://c1")
	if err := s.Send(context.Background(), &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{rcv},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(5 * time.Second)
	for c.Stats().Dropped == 0 {
		select {
		case <-deadline:
			t.Fatal("drop never counted")
		case <-time.After(time.Millisecond):
		}
	}
}

func TestDetachAndReattach(t *testing.T) {
	n := transport.NewInProcNetwork()
	c := newTestContainer(t, n, "c1", "site1")
	startContainer(t, c)
	other := newTestContainer(t, n, "c2", "site2")

	if c.Addr() != "inproc://c1" {
		t.Fatalf("addr = %q", c.Addr())
	}
	if err := c.Detach(); err != nil {
		t.Fatal(err)
	}
	if c.Addr() != "" {
		t.Fatalf("addr after detach = %q", c.Addr())
	}
	if err := c.Detach(); !errors.Is(err, ErrNotAttached) {
		t.Fatalf("second detach = %v", err)
	}
	// The address is free on the network again.
	if n.Lookup("inproc://c1") {
		t.Fatal("endpoint survived detach")
	}
	// Sends to the detached container fail at the transport.
	msg := &acl.Message{
		Performative: acl.Inform,
		Receivers:    []acl.AID{acl.NewAID("anyone", "site1", "inproc://c1")},
	}
	sender, err := other.SpawnAgent("sender")
	if err != nil {
		t.Fatal(err)
	}
	if err := sender.Send(context.Background(), msg); !errors.Is(err, transport.ErrUnknownAddr) {
		t.Fatalf("send to detached = %v", err)
	}

	// Re-attach under the same address; a running container starts newly
	// spawned agents immediately, so delivery works again.
	if err := c.AttachInProc(n, "inproc://c1"); err != nil {
		t.Fatal(err)
	}
	got := make(chan *acl.Message, 1)
	rcv, err := c.SpawnAgent("anyone")
	if err != nil {
		t.Fatal(err)
	}
	rcv.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
		select {
		case got <- m:
		default:
		}
	})
	if err := sender.Send(context.Background(), msg.Clone()); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(5 * time.Second):
		t.Fatal("no delivery after re-attach")
	}
}
