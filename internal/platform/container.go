// Package platform implements agent containers: the unit of deployment
// the paper distributes across machines ("this grid is composed of
// containers of agents, which are distributed among many computers",
// §3.3). A container hosts agents, binds a transport endpoint, routes
// messages between local agents and remote containers, and reports the
// resource profile it registers with the grid root's directory.
package platform

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/flight"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
)

// Resolver maps an AID without transport addresses to a container
// address. The grid root's directory backs the production resolver.
type Resolver func(aid acl.AID) (addr string, err error)

// Container errors.
var (
	ErrNotAttached  = errors.New("platform: container has no transport")
	ErrDupAgent     = errors.New("platform: agent name already in use")
	ErrNoAgent      = errors.New("platform: no such agent")
	ErrNoRoute      = errors.New("platform: cannot route message")
	ErrAlreadyBound = errors.New("platform: transport already attached")
)

// Config configures a container.
type Config struct {
	// Name uniquely identifies the container within the grid.
	Name string
	// Platform is the site/platform name agents are addressed under.
	Platform string
	// Profile describes the hosting machine's capacity.
	Profile directory.ResourceProfile
	// Resolver resolves AIDs with no explicit addresses. Optional.
	Resolver Resolver
	// ErrorLog receives routing and agent errors. Optional.
	ErrorLog func(error)
	// Tracer, when set, is handed to every spawned agent and records a
	// transport.send span for each traced remote hop. Optional.
	Tracer *trace.Tracer
	// Metrics, when set, registers the container's traffic counters, a
	// mailbox-depth gauge, a measured-load gauge and a handle-latency
	// histogram shared by every spawned agent, all labeled
	// {container=Name}. A nil registry costs nothing. Optional.
	Metrics *telemetry.Registry
	// LatencyBudget is the agent handle-latency EWMA that counts as
	// fully loaded when deriving measured load. Zero means 250ms.
	LatencyBudget time.Duration
	// LoadReporter, when set, periodically receives the container's
	// measured load while it runs — the closed loop into the paper's
	// §3.5 load balancing (directory.UpdateLoad in production).
	// directory.ErrNotFound returns are ignored so a container whose
	// lease lapsed does not spam the error log. Optional.
	LoadReporter func(container string, load float64) error
	// LoadReportEvery is the reporting interval (default 500ms).
	LoadReportEvery time.Duration
	// Flight, when set, journals routing outcomes under platform.route
	// and guards every agent goroutine with panic capture (the panic
	// still propagates after the recorder dumps). Optional.
	Flight *flight.Recorder
}

// Stats counts container message traffic.
type Stats struct {
	DeliveredLocal uint64 // messages handed to local agents
	Forwarded      uint64 // messages sent to remote containers
	Dropped        uint64 // undeliverable messages (full mailbox, no route)
}

// Container hosts a set of agents behind one transport endpoint.
type Container struct {
	cfg Config

	mu             sync.Mutex
	tr             transport.Transport           // guarded by mu
	agents         map[string]*agent.Agent       // guarded by mu
	cancels        map[string]context.CancelFunc // guarded by mu
	running        bool                          // guarded by mu
	runCtx         context.Context               // guarded by mu
	reporterCancel context.CancelFunc            // guarded by mu
	wg             sync.WaitGroup

	loadFn atomic.Pointer[func() float64]

	deliveredLocal atomic.Uint64
	forwarded      atomic.Uint64
	dropped        atomic.Uint64

	// Telemetry instruments; all nil-safe no-ops when cfg.Metrics is
	// nil.
	mDelivered *telemetry.Counter
	mForwarded *telemetry.Counter
	mDropped   *telemetry.Counter
	mSentFr    *telemetry.Counter
	mRecvFr    *telemetry.Counter
	handleHist *telemetry.Histogram

	// fRoute journals per-message routing outcomes; nil journals no-op.
	fRoute *flight.Journal
}

// New creates a container. Attach a transport before starting it.
func New(cfg Config) (*Container, error) {
	if cfg.Name == "" {
		return nil, errors.New("platform: container needs a name")
	}
	if cfg.Platform == "" {
		return nil, errors.New("platform: container needs a platform name")
	}
	c := &Container{
		cfg:     cfg,
		agents:  make(map[string]*agent.Agent),
		cancels: make(map[string]context.CancelFunc),
	}
	r := cfg.Metrics
	l := telemetry.Labels{"container": cfg.Name}
	c.mDelivered = r.Counter("platform_messages_delivered_total", "messages handed to local agents", l)
	c.mForwarded = r.Counter("platform_messages_forwarded_total", "messages sent to remote containers", l)
	c.mDropped = r.Counter("platform_messages_dropped_total", "undeliverable messages (full mailbox, no route)", l)
	c.mSentFr = r.Counter("acl_sent_frames_total", "ACL frames sent over the transport", l)
	c.mRecvFr = r.Counter("acl_received_frames_total", "ACL frames received from the transport", l)
	c.handleHist = r.Histogram("agent_handle_seconds", "agent message dispatch wall time", l)
	r.GaugeFunc("agent_mailbox_depth_count", "messages queued across this container's agent mailboxes", l, func() float64 {
		return float64(c.MailboxDepth())
	})
	r.GaugeFunc("platform_load_ratio", "measured load fraction reported to the directory", l, c.MeasuredLoad)
	c.fRoute = cfg.Flight.Journal("platform.route")
	return c, nil
}

// Name returns the container name.
func (c *Container) Name() string { return c.cfg.Name }

// Platform returns the platform/site name.
func (c *Container) Platform() string { return c.cfg.Platform }

// Profile returns the configured resource profile.
func (c *Container) Profile() directory.ResourceProfile { return c.cfg.Profile }

// AttachInProc binds the container to an in-process network under addr.
func (c *Container) AttachInProc(n *transport.InProcNetwork, addr string) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tr != nil {
		return ErrAlreadyBound
	}
	tr, err := n.Endpoint(addr, c.handleInbound)
	if err != nil {
		return err
	}
	c.tr = tr
	return nil
}

// AttachTCP binds the container to a TCP endpoint on addr
// ("host:port", port 0 for ephemeral).
func (c *Container) AttachTCP(addr string, opts ...transport.TCPOption) error {
	c.mu.Lock()
	if c.tr != nil {
		c.mu.Unlock()
		return ErrAlreadyBound
	}
	c.mu.Unlock()

	// Bind outside the lock: net.Listen can block (slow resolver, port
	// scan), and c.mu also serializes Addr/Send for every agent in the
	// container.
	tr, err := transport.ListenTCP(addr, c.handleInbound, opts...)
	if err != nil {
		return err
	}

	c.mu.Lock()
	if c.tr != nil {
		// Lost an attach race; keep the winner.
		c.mu.Unlock()
		_ = tr.Close()
		return ErrAlreadyBound
	}
	c.tr = tr
	c.mu.Unlock()
	return nil
}

// Addr returns the container's transport address ("" before attach).
func (c *Container) Addr() string {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tr == nil {
		return ""
	}
	return c.tr.Addr()
}

// SetLoadFunc installs the function Load consults; grids set it to expose
// queue depth or task backlog as the load fraction reported to the
// directory. Passing nil restores the default (always 0).
func (c *Container) SetLoadFunc(f func() float64) {
	if f == nil {
		c.loadFn.Store(nil)
		return
	}
	c.loadFn.Store(&f)
}

// Load returns the container's current load fraction in [0,1].
func (c *Container) Load() float64 {
	if p := c.loadFn.Load(); p != nil {
		l := (*p)()
		if l < 0 {
			return 0
		}
		if l > 1 {
			return 1
		}
		return l
	}
	return 0
}

// MailboxDepth returns the number of messages queued across every
// hosted agent's mailbox.
func (c *Container) MailboxDepth() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	depth := 0
	for _, a := range c.agents {
		depth += a.MailboxDepth()
	}
	return depth
}

// TelemetryLoad derives a load fraction in [0,1] from the container's
// own runtime signals: the fullest agent mailbox and the worst agent
// handle-latency EWMA measured against LatencyBudget. It deliberately
// never consults the installed load function, so subsystems may fold
// TelemetryLoad into their Load without recursing.
func (c *Container) TelemetryLoad() float64 {
	var mbox, lat float64
	c.mu.Lock()
	for _, a := range c.agents {
		if capacity := a.MailboxCap(); capacity > 0 {
			if f := float64(a.MailboxDepth()) / float64(capacity); f > mbox {
				mbox = f
			}
		}
		if l := a.HandleLatency(); l > lat {
			lat = l
		}
	}
	c.mu.Unlock()
	budget := c.cfg.LatencyBudget
	if budget <= 0 {
		budget = 250 * time.Millisecond
	}
	load := lat / budget.Seconds()
	if mbox > load {
		load = mbox
	}
	if load > 1 {
		return 1
	}
	return load
}

// MeasuredLoad is the load fraction the container reports to the
// directory: the worse of the installed load function (task backlog,
// §3.5 resource profiles) and the telemetry-derived signal. A
// container that claims to be idle but whose mailboxes are backing up
// reads as loaded.
func (c *Container) MeasuredLoad() float64 {
	if tl := c.TelemetryLoad(); tl > 0 {
		if l := c.Load(); l > tl {
			return l
		}
		return tl
	}
	return c.Load()
}

// Registration builds the directory entry this container registers with
// the grid root (paper Figure 4), listing the given services.
func (c *Container) Registration(services []directory.ServiceDesc) directory.Registration {
	return directory.Registration{
		Container: c.cfg.Name,
		Addr:      c.Addr(),
		Profile:   c.cfg.Profile,
		Services:  services,
		Load:      c.MeasuredLoad(),
	}
}

// SpawnAgent creates and registers an agent under the container's
// platform name. If the container is running, the agent starts at once.
func (c *Container) SpawnAgent(local string, opts ...agent.Option) (*agent.Agent, error) {
	id := acl.NewAID(local, c.cfg.Platform)
	// The container's tracer and handle histogram are defaults;
	// explicit caller options come later in the slice and may override
	// them.
	opts = append([]agent.Option{
		agent.WithTracer(c.cfg.Tracer),
		agent.WithHandleHistogram(c.handleHist),
	}, opts...)
	a := agent.New(id, c.routeFrom(id), opts...)
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.agents[local]; dup {
		return nil, fmt.Errorf("%w: %q", ErrDupAgent, local)
	}
	c.agents[local] = a
	if c.running {
		c.startAgentLocked(a, local)
	}
	return a, nil
}

// AdoptAgent registers an externally constructed agent (used by the
// mobility package when an agent migrates in). The agent must have been
// built with the container's Route as its SendFunc.
func (c *Container) AdoptAgent(local string, a *agent.Agent) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.agents[local]; dup {
		return fmt.Errorf("%w: %q", ErrDupAgent, local)
	}
	c.agents[local] = a
	if c.running {
		c.startAgentLocked(a, local)
	}
	return nil
}

// startAgentLocked launches an agent's Run loop. Caller holds c.mu.
func (c *Container) startAgentLocked(a *agent.Agent, local string) {
	ctx, cancel := context.WithCancel(c.runCtx)
	c.cancels[local] = cancel
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		// Dump the flight recorder before an agent panic takes the
		// process down; the panic itself still propagates.
		defer c.cfg.Flight.CapturePanic(c.cfg.Name + "/" + local)
		if err := a.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
			c.logErr(fmt.Errorf("agent %s: %w", local, err))
		}
	}()
}

// Agent returns a hosted agent by local name.
func (c *Container) Agent(local string) (*agent.Agent, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	a, ok := c.agents[local]
	return a, ok
}

// KillAgent stops and removes an agent.
func (c *Container) KillAgent(local string) error {
	c.mu.Lock()
	_, ok := c.agents[local]
	cancel := c.cancels[local]
	delete(c.agents, local)
	delete(c.cancels, local)
	c.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoAgent, local)
	}
	if cancel != nil {
		cancel()
	}
	return nil
}

// AgentNames lists hosted agents, sorted.
func (c *Container) AgentNames() []string {
	c.mu.Lock()
	out := make([]string, 0, len(c.agents))
	for name := range c.agents {
		out = append(out, name)
	}
	c.mu.Unlock()
	sort.Strings(out)
	return out
}

// Start launches every hosted agent and blocks new inbound routing on
// ctx. It returns immediately; Stop (or cancelling ctx) shuts down.
func (c *Container) Start(ctx context.Context) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.tr == nil {
		return ErrNotAttached
	}
	if c.running {
		return nil
	}
	c.running = true
	c.runCtx = ctx
	for local, a := range c.agents {
		c.startAgentLocked(a, local)
	}
	if c.cfg.LoadReporter != nil {
		rctx, cancel := context.WithCancel(ctx)
		c.reporterCancel = cancel
		c.wg.Add(1)
		go c.reportLoad(rctx)
	}
	return nil
}

// reportLoad pushes the measured load to the configured reporter until
// ctx is cancelled (by Stop or by the run context).
func (c *Container) reportLoad(ctx context.Context) {
	defer c.wg.Done()
	every := c.cfg.LoadReportEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	ticker := time.NewTicker(every)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			err := c.cfg.LoadReporter(c.cfg.Name, c.MeasuredLoad())
			if err != nil && !errors.Is(err, directory.ErrNotFound) {
				c.logErr(fmt.Errorf("load report: %w", err))
			}
		}
	}
}

// Detach closes the container's transport endpoint and releases it,
// leaving the container itself running. Sends to the old address fail
// until the container re-attaches, and a running container spawns new
// agents immediately — so Detach plus KillAgent models a container
// crash, and AttachInProc plus SpawnAgent models its restart (the chaos
// harness drives exactly that cycle).
func (c *Container) Detach() error {
	c.mu.Lock()
	tr := c.tr
	c.tr = nil
	c.mu.Unlock()
	if tr == nil {
		return ErrNotAttached
	}
	return tr.Close()
}

// Stop terminates all agents and closes the transport.
func (c *Container) Stop() error {
	c.mu.Lock()
	cancels := make([]context.CancelFunc, 0, len(c.cancels))
	for _, cancel := range c.cancels {
		cancels = append(cancels, cancel)
	}
	c.cancels = make(map[string]context.CancelFunc)
	tr := c.tr
	c.running = false
	if c.reporterCancel != nil {
		cancels = append(cancels, c.reporterCancel)
		c.reporterCancel = nil
	}
	c.mu.Unlock()

	for _, cancel := range cancels {
		cancel()
	}
	var err error
	if tr != nil {
		err = tr.Close()
	}
	c.wg.Wait()
	return err
}

// Stats returns message traffic counters.
func (c *Container) Stats() Stats {
	return Stats{
		DeliveredLocal: c.deliveredLocal.Load(),
		Forwarded:      c.forwarded.Load(),
		Dropped:        c.dropped.Load(),
	}
}

// routeFrom builds the SendFunc for an agent hosted here.
func (c *Container) routeFrom(id acl.AID) agent.SendFunc {
	return func(ctx context.Context, m *acl.Message) error {
		if m.Sender.IsZero() {
			m.Sender = id
		}
		return c.Route(ctx, m)
	}
}

// Route delivers m to each receiver: local agents directly, remote ones
// through the transport. It aggregates per-receiver failures.
func (c *Container) Route(ctx context.Context, m *acl.Message) error {
	if err := m.Validate(); err != nil {
		return err
	}
	var errs []error
	for _, rcv := range m.Receivers {
		if err := c.routeOne(ctx, m, rcv); err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", rcv.Name, err))
		}
	}
	return errors.Join(errs...)
}

// hopEnvelope is the reusable shallow copy routeOne sends through the
// transport with the receiver list narrowed to one hop. Pooling it
// removes the per-hop deep Clone from the remote send path; see the
// safety argument at the use site.
type hopEnvelope struct {
	m   acl.Message
	rcv [1]acl.AID
}

var hopPool = sync.Pool{New: func() any { return new(hopEnvelope) }}

// journalRoute records one routing outcome in the flight recorder.
func (c *Container) journalRoute(m *acl.Message, outcome flight.Outcome, err error) {
	if c.fRoute == nil {
		return
	}
	e := flight.Event{
		Container:    c.cfg.Name,
		Conversation: m.ConversationID,
		Outcome:      outcome,
	}
	if m.Trace != nil {
		e.TraceID = flight.ParseTraceID(m.Trace.TraceID)
	}
	if err != nil {
		e.Err = err.Error()
	}
	c.fRoute.Emit(e)
}

func (c *Container) routeOne(ctx context.Context, m *acl.Message, rcv acl.AID) error {
	// Local delivery when the receiver lives in this container.
	if rcv.Platform() == c.cfg.Platform {
		c.mu.Lock()
		a, ok := c.agents[rcv.Local()]
		c.mu.Unlock()
		if ok {
			if err := a.Deliver(m.Clone()); err != nil {
				c.dropped.Add(1)
				c.mDropped.Inc()
				c.journalRoute(m, flight.OutcomeDrop, err)
				return err
			}
			c.deliveredLocal.Add(1)
			c.mDelivered.Inc()
			c.journalRoute(m, flight.OutcomeOK, nil)
			return nil
		}
		// Same platform but a different container: fall through to
		// remote routing via resolver.
	}
	addr, err := c.resolve(rcv)
	if err != nil {
		c.dropped.Add(1)
		c.mDropped.Inc()
		c.journalRoute(m, flight.OutcomeDrop, err)
		return err
	}
	c.mu.Lock()
	tr := c.tr
	c.mu.Unlock()
	if tr == nil {
		c.dropped.Add(1)
		c.mDropped.Inc()
		c.journalRoute(m, flight.OutcomeDrop, ErrNotAttached)
		return ErrNotAttached
	}
	// Narrow the receiver list to this hop so the remote container does
	// not re-forward to everyone. The hop envelope is a pooled shallow
	// copy, not a Clone: every Transport.Send finishes with the message
	// before returning (in-proc delivers private copies, TCP encodes
	// the frame synchronously), and a shallow copy only shares
	// immutable strings and slices nobody on the send path mutates.
	hop := hopPool.Get().(*hopEnvelope)
	hop.m = *m
	hop.rcv[0] = rcv
	hop.m.Receivers = hop.rcv[:1]
	out := &hop.m
	// The hop span is a sibling leaf, not a new parent: the receiver
	// still parents under the sending stage, so a lost message leaves a
	// visible transport.send with no continuation.
	sp := c.cfg.Tracer.ContinueFromMessage("transport.send", out)
	sp.SetAttr("container", c.cfg.Name)
	sp.SetAttr("to", addr)
	err = tr.Send(ctx, addr, out)
	sp.SetError(err)
	sp.End()
	// Drop the references before pooling so a recycled envelope cannot
	// pin a large content buffer or trace context.
	hop.m = acl.Message{}
	hop.rcv[0] = acl.AID{}
	hopPool.Put(hop)
	if err != nil {
		c.dropped.Add(1)
		c.mDropped.Inc()
		c.journalRoute(m, flight.OutcomeError, err)
		return err
	}
	c.forwarded.Add(1)
	c.mForwarded.Inc()
	c.mSentFr.Inc()
	c.journalRoute(m, flight.OutcomeOK, nil)
	return nil
}

func (c *Container) resolve(rcv acl.AID) (string, error) {
	if len(rcv.Addresses) > 0 {
		return rcv.Addresses[0], nil
	}
	if c.cfg.Resolver != nil {
		return c.cfg.Resolver(rcv)
	}
	return "", fmt.Errorf("%w: %s has no address and no resolver is set", ErrNoRoute, rcv.Name)
}

// handleInbound dispatches a message arriving on the transport to the
// addressed local agents.
func (c *Container) handleInbound(m *acl.Message) {
	c.mRecvFr.Inc()
	for _, rcv := range m.Receivers {
		if rcv.Platform() != c.cfg.Platform {
			continue
		}
		c.mu.Lock()
		a, ok := c.agents[rcv.Local()]
		c.mu.Unlock()
		if !ok {
			c.dropped.Add(1)
			c.mDropped.Inc()
			c.logErr(fmt.Errorf("%w: inbound for unknown agent %s", ErrNoAgent, rcv.Name))
			continue
		}
		if err := a.Deliver(m.Clone()); err != nil {
			c.dropped.Add(1)
			c.mDropped.Inc()
			c.logErr(fmt.Errorf("deliver to %s: %w", rcv.Name, err))
			continue
		}
		c.deliveredLocal.Add(1)
		c.mDelivered.Inc()
	}
}

func (c *Container) logErr(err error) {
	if c.cfg.ErrorLog != nil {
		c.cfg.ErrorLog(err)
	}
}
