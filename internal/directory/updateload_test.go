package directory

import (
	"errors"
	"testing"
	"time"
)

func TestUpdateLoad(t *testing.T) {
	now := time.Unix(0, 0)
	d := New(time.Second, WithClock(func() time.Time { return now }))

	if err := d.Register(analysisReg("pg-1", "cpu")); err != nil {
		t.Fatal(err)
	}
	reg, _ := d.Get("pg-1")
	expiry := reg.Expiry

	if err := d.UpdateLoad("pg-1", 0.9); err != nil {
		t.Fatal(err)
	}
	reg, _ = d.Get("pg-1")
	if reg.Load != 0.9 {
		t.Fatalf("Load = %v, want 0.9", reg.Load)
	}
	if !reg.Expiry.Equal(expiry) {
		t.Fatalf("UpdateLoad moved the lease expiry: %v -> %v", expiry, reg.Expiry)
	}

	// Renew, by contrast, extends the lease.
	now = now.Add(500 * time.Millisecond)
	if err := d.Renew("pg-1", 0.5); err != nil {
		t.Fatal(err)
	}
	reg, _ = d.Get("pg-1")
	if !reg.Expiry.After(expiry) {
		t.Fatal("Renew did not extend the lease")
	}

	if err := d.UpdateLoad("pg-1", 1.5); !errors.Is(err, ErrBadLoad) {
		t.Fatalf("bad load: got %v, want ErrBadLoad", err)
	}
	if err := d.UpdateLoad("ghost", 0.5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("unknown container: got %v, want ErrNotFound", err)
	}
}
