package directory

import (
	"errors"
	"sync"
	"testing"
	"time"
)

var profile = ResourceProfile{CPUCapacity: 100, NetCapacity: 100, DiscCapacity: 100}

func analysisReg(name string, caps ...string) Registration {
	return Registration{
		Container: name,
		Addr:      "inproc://" + name,
		Profile:   profile,
		Services:  []ServiceDesc{{Type: ServiceAnalysis, Capabilities: caps}},
	}
}

// fakeClock is a controllable time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

func TestRegisterAndGet(t *testing.T) {
	d := New(time.Minute)
	if err := d.Register(analysisReg("c1", "cpu", "disk")); err != nil {
		t.Fatal(err)
	}
	got, ok := d.Get("c1")
	if !ok {
		t.Fatal("Get failed")
	}
	if got.Addr != "inproc://c1" || !got.HasService(ServiceAnalysis) {
		t.Fatalf("bad entry: %+v", got)
	}
	if _, ok := d.Get("ghost"); ok {
		t.Fatal("phantom entry")
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestRegisterValidation(t *testing.T) {
	d := New(time.Minute)
	cases := []struct {
		name string
		mod  func(*Registration)
		want error
	}{
		{"no container", func(r *Registration) { r.Container = "" }, ErrNoContainer},
		{"no addr", func(r *Registration) { r.Addr = "" }, ErrNoAddr},
		{"bad profile", func(r *Registration) { r.Profile.CPUCapacity = 0 }, ErrBadProfile},
		{"no services", func(r *Registration) { r.Services = nil }, ErrNoServices},
		{"bad load", func(r *Registration) { r.Load = 1.5 }, ErrBadLoad},
		{"unknown service", func(r *Registration) { r.Services[0].Type = "juggling" }, ErrUnknownService},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := analysisReg("c1", "cpu")
			tc.mod(&r)
			if err := d.Register(r); !errors.Is(err, tc.want) {
				t.Fatalf("Register = %v, want %v", err, tc.want)
			}
		})
	}
}

func TestGetReturnsCopy(t *testing.T) {
	d := New(time.Minute)
	d.Register(analysisReg("c1", "cpu"))
	got, _ := d.Get("c1")
	got.Services[0].Capabilities[0] = "tampered"
	again, _ := d.Get("c1")
	if again.Services[0].Capabilities[0] != "cpu" {
		t.Fatal("Get leaked internal state")
	}
}

func TestRenewUpdatesLoadAndLease(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	d := New(time.Minute, WithClock(clk.now))
	d.Register(analysisReg("c1", "cpu"))

	if err := d.Renew("c1", 0.7); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get("c1")
	if got.Load != 0.7 {
		t.Fatalf("Load = %v", got.Load)
	}
	if err := d.Renew("ghost", 0.5); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Renew ghost = %v", err)
	}
	if err := d.Renew("c1", -0.1); !errors.Is(err, ErrBadLoad) {
		t.Fatalf("Renew bad load = %v", err)
	}

	// Renewing must push out expiry.
	clk.advance(50 * time.Second)
	d.Renew("c1", 0.2)
	clk.advance(50 * time.Second) // 100s after registration, 50s after renewal
	if removed := d.Sweep(); len(removed) != 0 {
		t.Fatalf("renewed entry swept: %v", removed)
	}
}

func TestSweepExpiresAndNotifies(t *testing.T) {
	clk := &fakeClock{t: time.Unix(1000, 0)}
	var expired []string
	var mu sync.Mutex
	d := New(time.Minute, WithClock(clk.now), WithOnExpire(func(name string) {
		mu.Lock()
		expired = append(expired, name)
		mu.Unlock()
	}))
	d.Register(analysisReg("c1", "cpu"))
	d.Register(analysisReg("c2", "disk"))
	clk.advance(30 * time.Second)
	d.Register(analysisReg("c3", "traffic"))

	clk.advance(45 * time.Second) // c1,c2 at 75s (expired); c3 at 45s (live)
	removed := d.Sweep()
	if len(removed) != 2 || removed[0] != "c1" || removed[1] != "c2" {
		t.Fatalf("Sweep = %v", removed)
	}
	mu.Lock()
	if len(expired) != 2 {
		t.Fatalf("onExpire calls = %v", expired)
	}
	mu.Unlock()
	if d.Len() != 1 {
		t.Fatalf("Len = %d", d.Len())
	}
}

func TestDeregister(t *testing.T) {
	d := New(time.Minute)
	d.Register(analysisReg("c1", "cpu"))
	d.Deregister("c1")
	d.Deregister("c1") // idempotent
	if d.Len() != 0 {
		t.Fatal("entry survived Deregister")
	}
}

func TestListSorted(t *testing.T) {
	d := New(time.Minute)
	for _, name := range []string{"zeta", "alpha", "mid"} {
		d.Register(analysisReg(name, "cpu"))
	}
	list := d.List()
	if len(list) != 3 || list[0].Container != "alpha" || list[2].Container != "zeta" {
		t.Fatalf("List = %+v", list)
	}
}

func TestSearch(t *testing.T) {
	d := New(time.Minute)
	d.Register(analysisReg("a1", "cpu", "memory"))
	d.Register(analysisReg("a2", "disk"))
	stor := Registration{
		Container: "s1", Addr: "inproc://s1", Profile: profile,
		Services: []ServiceDesc{{Type: ServiceStorage}},
	}
	d.Register(stor)
	d.Renew("a1", 0.9)

	if got := d.Search(Query{ServiceType: ServiceAnalysis}); len(got) != 2 {
		t.Fatalf("analysis search = %d entries", len(got))
	}
	if got := d.Search(Query{ServiceType: ServiceAnalysis, Capability: "disk"}); len(got) != 1 || got[0].Container != "a2" {
		t.Fatalf("capability search = %+v", got)
	}
	if got := d.Search(Query{ServiceType: ServiceAnalysis, MaxLoad: 0.5}); len(got) != 1 || got[0].Container != "a2" {
		t.Fatalf("load search = %+v", got)
	}
	if got := d.Search(Query{ServiceType: ServiceStorage}); len(got) != 1 || got[0].Container != "s1" {
		t.Fatalf("storage search = %+v", got)
	}
	if got := d.Search(Query{ServiceType: ServiceInterface}); len(got) != 0 {
		t.Fatalf("interface search = %+v", got)
	}
}

func TestHasCapabilityEmptyMatchesType(t *testing.T) {
	r := analysisReg("c", "cpu")
	if !r.HasCapability(ServiceAnalysis, "") {
		t.Error("empty capability should match")
	}
	if r.HasCapability(ServiceStorage, "") {
		t.Error("wrong type matched")
	}
	if r.HasCapability(ServiceAnalysis, "disk") {
		t.Error("missing capability matched")
	}
}

func TestRegisterReplaces(t *testing.T) {
	d := New(time.Minute)
	d.Register(analysisReg("c1", "cpu"))
	r2 := analysisReg("c1", "disk")
	r2.Addr = "tcp://1.2.3.4:9"
	if err := d.Register(r2); err != nil {
		t.Fatal(err)
	}
	got, _ := d.Get("c1")
	if got.Addr != "tcp://1.2.3.4:9" || !got.HasCapability(ServiceAnalysis, "disk") {
		t.Fatalf("replacement not applied: %+v", got)
	}
	if d.Len() != 1 {
		t.Fatal("replacement duplicated entry")
	}
}

func TestConcurrentAccess(t *testing.T) {
	d := New(time.Minute)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := string(rune('a' + i))
			for j := 0; j < 50; j++ {
				d.Register(analysisReg(name, "cpu"))
				d.Renew(name, 0.5)
				d.Search(Query{ServiceType: ServiceAnalysis})
				d.List()
				d.Sweep()
			}
		}(i)
	}
	wg.Wait()
	if d.Len() != 8 {
		t.Fatalf("Len = %d, want 8", d.Len())
	}
}
