// Package directory implements the grid root's directory service
// (the FIPA Directory Facilitator role described in §3.5 and Figure 4 of
// the paper). Containers register a profile of the resource they run on
// and the services they provide; schedulers query the directory to find
// containers with the knowledge, the capacity and the idleness to take
// work. Registrations are leases: a container that stops renewing
// disappears, which is how the grid detects dead nodes.
package directory

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// ResourceProfile describes the capacity of the machine a container runs
// on, in the paper's relative units per unit of time.
type ResourceProfile struct {
	CPUCapacity  float64 `json:"cpu_capacity"`
	NetCapacity  float64 `json:"net_capacity"`
	DiscCapacity float64 `json:"disc_capacity"`
}

// Valid reports whether every capacity is positive.
func (p ResourceProfile) Valid() bool {
	return p.CPUCapacity > 0 && p.NetCapacity > 0 && p.DiscCapacity > 0
}

// Service types provided by grid containers.
const (
	ServiceCollection     = "collection"
	ServiceClassification = "classification"
	ServiceAnalysis       = "analysis"
	ServiceStorage        = "storage"
	ServiceInterface      = "interface"
	ServiceBroker         = "broker"
)

// ServiceDesc describes one service a container offers. Capabilities name
// what the container "knows" — for analysis containers, the metric
// categories its rule base covers (e.g. "cpu", "disk", "traffic").
type ServiceDesc struct {
	Type         string   `json:"type"`
	Capabilities []string `json:"capabilities,omitempty"`
}

// Registration is one container's directory entry.
type Registration struct {
	// Container is the unique container name.
	Container string `json:"container"`
	// Addr is the container's transport address.
	Addr string `json:"addr"`
	// Profile is the static capacity of the hosting resource.
	Profile ResourceProfile `json:"profile"`
	// Services the container provides.
	Services []ServiceDesc `json:"services"`
	// Load is the most recently reported load fraction in [0,1].
	Load float64 `json:"load"`
	// Expiry is when the lease lapses unless renewed.
	Expiry time.Time `json:"expiry"`
}

// HasService reports whether the registration offers the service type.
func (r *Registration) HasService(typ string) bool {
	for _, s := range r.Services {
		if s.Type == typ {
			return true
		}
	}
	return false
}

// HasCapability reports whether any service of the given type lists the
// capability. An empty capability matches any service of that type.
func (r *Registration) HasCapability(typ, capability string) bool {
	for _, s := range r.Services {
		if s.Type != typ {
			continue
		}
		if capability == "" {
			return true
		}
		for _, c := range s.Capabilities {
			if c == capability {
				return true
			}
		}
	}
	return false
}

// clone returns a deep copy so callers cannot mutate directory state.
func (r *Registration) clone() Registration {
	out := *r
	out.Services = make([]ServiceDesc, len(r.Services))
	for i, s := range r.Services {
		out.Services[i] = ServiceDesc{Type: s.Type, Capabilities: append([]string(nil), s.Capabilities...)}
	}
	return out
}

// Directory errors.
var (
	ErrBadProfile     = errors.New("directory: invalid resource profile")
	ErrNotFound       = errors.New("directory: container not registered")
	ErrNoContainer    = errors.New("directory: empty container name")
	ErrNoAddr         = errors.New("directory: empty address")
	ErrBadLoad        = errors.New("directory: load outside [0,1]")
	ErrNoServices     = errors.New("directory: registration lists no services")
	ErrUnknownService = errors.New("directory: unknown service type")
)

func validServiceType(t string) bool {
	switch t {
	case ServiceCollection, ServiceClassification, ServiceAnalysis, ServiceStorage, ServiceInterface, ServiceBroker:
		return true
	}
	return false
}

// Option configures a Directory.
type Option func(*Directory)

// WithClock injects a time source (tests use a fake clock).
func WithClock(now func() time.Time) Option {
	return func(d *Directory) { d.now = now }
}

// WithOnExpire installs a callback invoked (outside the lock) with the
// name of each container whose lease lapses during Sweep.
func WithOnExpire(f func(container string)) Option {
	return func(d *Directory) { d.onExpire = f }
}

// Directory is the lease-based registry. Safe for concurrent use.
type Directory struct {
	ttl      time.Duration
	now      func() time.Time
	onExpire func(string)

	mu      sync.RWMutex
	entries map[string]*Registration // guarded by mu
}

// New returns a directory whose leases last ttl.
func New(ttl time.Duration, opts ...Option) *Directory {
	d := &Directory{
		ttl:     ttl,
		now:     time.Now,
		entries: make(map[string]*Registration),
	}
	for _, opt := range opts {
		opt(d)
	}
	return d
}

// Register adds or replaces a container's entry and starts its lease.
// This is the interaction of the paper's Figure 4: a container joining
// the grid informs the root of its resource profile and services.
func (d *Directory) Register(reg Registration) error {
	switch {
	case reg.Container == "":
		return ErrNoContainer
	case reg.Addr == "":
		return ErrNoAddr
	case !reg.Profile.Valid():
		return ErrBadProfile
	case len(reg.Services) == 0:
		return ErrNoServices
	case reg.Load < 0 || reg.Load > 1:
		return ErrBadLoad
	}
	for _, s := range reg.Services {
		if !validServiceType(s.Type) {
			return fmt.Errorf("%w: %q", ErrUnknownService, s.Type)
		}
	}
	entry := reg.clone()
	entry.Expiry = d.now().Add(d.ttl)
	d.mu.Lock()
	defer d.mu.Unlock()
	d.entries[reg.Container] = &entry
	return nil
}

// Renew refreshes a container's lease and updates its reported load.
// It is the heartbeat message of a live container.
func (d *Directory) Renew(container string, load float64) error {
	if load < 0 || load > 1 {
		return ErrBadLoad
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[container]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, container)
	}
	e.Load = load
	e.Expiry = d.now().Add(d.ttl)
	return nil
}

// UpdateLoad refreshes a container's advertised load without touching
// its lease. Telemetry-driven load reporting calls this between
// heartbeats: load can change much faster than liveness, and a stale
// container must not keep its registration alive just by reporting
// numbers.
func (d *Directory) UpdateLoad(container string, load float64) error {
	if load < 0 || load > 1 {
		return ErrBadLoad
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	e, ok := d.entries[container]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNotFound, container)
	}
	e.Load = load
	return nil
}

// Deregister removes a container's entry, if present.
func (d *Directory) Deregister(container string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.entries, container)
}

// Get returns the entry for a container.
func (d *Directory) Get(container string) (Registration, bool) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	e, ok := d.entries[container]
	if !ok {
		return Registration{}, false
	}
	return e.clone(), true
}

// Len returns the number of live registrations.
func (d *Directory) Len() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.entries)
}

// List returns all registrations sorted by container name.
func (d *Directory) List() []Registration {
	d.mu.RLock()
	out := make([]Registration, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e.clone())
	}
	d.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Container < out[j].Container })
	return out
}

// Query selects registrations by service type and (optionally) a
// capability the service must list and a maximum load.
type Query struct {
	// ServiceType is required, e.g. directory.ServiceAnalysis.
	ServiceType string
	// Capability, when non-empty, requires the capability on the service.
	Capability string
	// MaxLoad, when set (>0), excludes containers with higher load.
	// MaxLoad 0 means "no load filter".
	MaxLoad float64
}

// Search returns the registrations matching q, sorted by container name.
func (d *Directory) Search(q Query) []Registration {
	all := d.List()
	out := all[:0]
	for _, r := range all {
		if !r.HasCapability(q.ServiceType, q.Capability) {
			continue
		}
		if q.MaxLoad > 0 && r.Load > q.MaxLoad {
			continue
		}
		out = append(out, r)
	}
	return out
}

// Sweep removes entries whose lease has lapsed, returning their names in
// sorted order. The grid root runs this periodically; the analyze package
// reassigns tasks owned by the removed containers.
func (d *Directory) Sweep() []string {
	now := d.now()
	d.mu.Lock()
	var expired []string
	for name, e := range d.entries {
		if e.Expiry.Before(now) {
			expired = append(expired, name)
			delete(d.entries, name)
		}
	}
	d.mu.Unlock()
	sort.Strings(expired)
	if d.onExpire != nil {
		for _, name := range expired {
			d.onExpire(name)
		}
	}
	return expired
}
