package scenarios

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/chaos"
	"agentgrid/internal/classify"
	"agentgrid/internal/collect"
	"agentgrid/internal/device"
	"agentgrid/internal/directory"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/snmp"
	"agentgrid/internal/store"
	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// replicaRig is a hand-built CG -> CLG -> PG chain whose classifier
// sinks into a three-way ReplicaSet instead of the single store
// core.Grid hardwires. Explicit-address AIDs skip the resolver so the
// chain needs no directory.
type replicaRig struct {
	col        *collect.Collector
	classifier *classify.Classifier
	rs         *store.ReplicaSet
	fleet      *device.Fleet
	h          *chaos.Harness
}

func newReplicaRig(t *testing.T, seed int64) *replicaRig {
	t.Helper()
	n := transport.NewInProcNetwork()
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)

	newContainer := func(name string) *platform.Container {
		c, err := platform.New(platform.Config{
			Name: name, Platform: name,
			Profile: directory.ResourceProfile{CPUCapacity: 1, NetCapacity: 1, DiscCapacity: 1},
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.AttachInProc(n, "inproc://"+name); err != nil {
			t.Fatal(err)
		}
		if err := c.Start(ctx); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Stop() })
		return c
	}

	// PG stand-in: swallows the classifier's data-present notices.
	pgC := newContainer("pg")
	pgA, err := pgC.SpawnAgent("pg")
	if err != nil {
		t.Fatal(err)
	}
	pgA.HandleFunc(agent.Selector{}, func(context.Context, *agent.Agent, *acl.Message) {})

	rs, err := store.NewReplicaSet(3, 0)
	if err != nil {
		t.Fatal(err)
	}
	clgC := newContainer("clg")
	ca, err := clgC.SpawnAgent("classifier")
	if err != nil {
		t.Fatal(err)
	}
	classifier, err := classify.New(ca, classify.Config{
		Store:     rs,
		Processor: acl.NewAID("pg", "pg", "inproc://pg"),
		Ontology:  obs.NewOntology(),
	})
	if err != nil {
		t.Fatal(err)
	}

	spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: seed}
	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })

	cgC := newContainer("cg")
	colA, err := cgC.SpawnAgent("collector")
	if err != nil {
		t.Fatal(err)
	}
	col, err := collect.New(colA, collect.Config{
		Site:       "site1",
		Classifier: acl.NewAID("classifier", "clg", "inproc://clg"),
		Iface: &collect.SNMPInterface{
			Client: snmp.NewClient("public", snmp.WithTimeout(2*time.Second)),
		},
		Ontology: obs.NewOntology(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, goal := range workload.Goals(spec, fleet, 1, time.Hour)[0] {
		if err := col.AddGoal(goal); err != nil {
			t.Fatal(err)
		}
	}

	h, err := chaos.New(chaos.Options{
		Scenario: fmt.Sprintf("replica-repair-seed%d", seed),
		Seed:     seed,
		Network:  n,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return &replicaRig{col: col, classifier: classifier, rs: rs, fleet: fleet, h: h}
}

func (r *replicaRig) collectRound(t *testing.T) error {
	t.Helper()
	for _, name := range r.col.Goals() {
		if err := r.col.CollectNow(context.Background(), name); err != nil {
			return err
		}
	}
	return nil
}

// TestScenarioReplicaPrimaryLossAndRepair ingests one round into a
// three-way replicated store, fails the primary replica, ingests a
// second round that only the two survivors see, then repairs the dead
// replica from a survivor's snapshot.
//
// Invariant: after repair all three replicas are byte-identical, and
// every batch the network delivered is readable from a replica that
// never failed — replication lost nothing.
func TestScenarioReplicaPrimaryLossAndRepair(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		r := newReplicaRig(t, seed)
		h, rs := r.h, r.rs

		// Classification is asynchronous; quiesce on the classifier's
		// batch counter before touching replica membership (2 hosts =
		// 2 goals = 2 batches per round).
		settle := func(batches uint64) {
			waitFor(t, 15*time.Second, fmt.Sprintf("%d batches classified", batches), func() bool {
				return r.classifier.Stats().Batches >= batches
			})
		}

		err := h.Run(chaos.Scenario{Name: "replica-repair", Steps: []chaos.Step{
			{At: 0, Name: "ingest-1", Do: func(*chaos.Harness) error {
				if err := r.collectRound(t); err != nil {
					return err
				}
				settle(2)
				return nil
			}},
			{At: 10 * time.Millisecond, Name: "fail-primary", Do: func(h *chaos.Harness) error {
				if err := rs.Fail(0); err != nil {
					return err
				}
				h.Recorder().Event(chaos.MetricStoreFail, "replica-0", 1)
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "ingest-2", Do: func(*chaos.Harness) error {
				r.fleet.Advance(1)
				if err := r.collectRound(t); err != nil {
					return err
				}
				settle(4)
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "repair", Do: func(h *chaos.Harness) error {
				if err := rs.Repair(0); err != nil {
					return err
				}
				h.Recorder().Event(chaos.MetricRepair, "replica-0", 1)
				return nil
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		if rs.LiveCount() != 3 {
			t.Fatalf("live replicas = %d, want 3", rs.LiveCount())
		}
		var replicas []*store.Store
		for i := 0; i < 3; i++ {
			rep, ok := rs.Replica(i)
			if !ok {
				t.Fatalf("no replica %d", i)
			}
			replicas = append(replicas, rep)
		}
		if err := chaos.ReplicasConverged(replicas...); err != nil {
			t.Fatal(err)
		}
		// Replica 1 never failed, so it must hold every delivered batch.
		if err := chaos.DeliveredBatchesStored(h.Trace(), "inproc://clg", replicas[1]); err != nil {
			t.Fatal(err)
		}
		rec := h.Recorder()
		if rec.EventCount(chaos.MetricStoreFail) != 1 || rec.EventCount(chaos.MetricRepair) != 1 {
			t.Fatalf("fail/repair events = %d/%d",
				rec.EventCount(chaos.MetricStoreFail), rec.EventCount(chaos.MetricRepair))
		}
	})
}
