package scenarios

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/chaos"
	"agentgrid/internal/classify"
	"agentgrid/internal/core"
	"agentgrid/internal/directory"
	"agentgrid/internal/obs"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// TestScenarioTraceSurvivesFaults pins the causal-tracing contract
// under network faults:
//
//   - a duplicated collector→classifier delivery keeps one coherent
//     trace (the duplicate continues the same trace, it does not fork a
//     new one) and the trace gains a chaos.dup annotation span;
//   - a classifier crash while a batch is held in flight leaves the
//     poll round's trace in the store ending before the classifier,
//     annotated chaos.hold (the delay) and chaos.lost (the in-flight
//     message died with the container) — the trace tells the operator
//     where the pipeline died.
func TestScenarioTraceSurvivesFaults(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: seed}
		r := newRig(t, core.Config{Site: "site1"}, spec, "trace-survival", seed)
		g, h := r.g, r.h

		clgC, ok := g.Container("clg")
		if !ok {
			t.Fatal("no clg container")
		}
		rewire := func() error {
			ca, err := clgC.SpawnAgent("classifier")
			if err != nil {
				return err
			}
			_, err = classify.New(ca, classify.Config{
				Store:     g.Store(),
				Processor: g.Root().Agent().ID(),
				Ontology:  obs.NewOntology(),
			})
			return err
		}
		if err := h.AddTarget(chaos.Target{
			Container: clgC,
			Addr:      "inproc://clg",
			Services:  []directory.ServiceDesc{{Type: directory.ServiceClassification}},
			Rewire:    rewire,
		}); err != nil {
			t.Fatal(err)
		}

		toClassifier := func(_, to string, _ *acl.Message) bool { return to == "inproc://clg" }
		err := h.Run(chaos.Scenario{Name: "trace-survival", Steps: []chaos.Step{
			// Round 1: every batch into the classifier is delivered twice.
			{At: 0, Name: "dup-plan", Do: func(h *chaos.Harness) error {
				h.SetPlan(transport.When(toClassifier, transport.Dup(1)))
				return nil
			}},
			{At: 5 * time.Millisecond, Name: "ingest-duplicated", Do: func(*chaos.Harness) error {
				if err := g.CollectNow(context.Background()); err != nil {
					return err
				}
				waitFor(t, 15*time.Second, "round-1 series", func() bool {
					n, _ := g.Store().Stats()
					return n == 8
				})
				return nil
			}},
			// Round 2: batches into the classifier are delayed in flight,
			// then the classifier dies before they arrive.
			{At: 20 * time.Millisecond, Name: "delay-plan", Do: func(h *chaos.Harness) error {
				h.SetPlan(transport.When(toClassifier, transport.Delay(30*time.Millisecond)))
				return nil
			}},
			{At: 25 * time.Millisecond, Name: "ingest-into-flight", Do: func(h *chaos.Harness) error {
				r.fleet.Advance(1)
				if err := g.CollectNow(context.Background()); err != nil {
					return err
				}
				if h.HeldMessages() == 0 {
					t.Fatal("no batch held in flight")
				}
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "crash-clg", Do: func(h *chaos.Harness) error {
				h.Heal()
				return h.Crash("clg")
			}},
			// Advancing past the due time releases the held batches into
			// the crashed container: they are lost, and recorded so.
			{At: 70 * time.Millisecond, Name: "release-into-void"},
			{At: 75 * time.Millisecond, Name: "restart-clg", Do: func(h *chaos.Harness) error {
				return h.Restart("clg")
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		tr := g.Tracer()
		tr.Flush()

		// The duplicated round: one trace holds the poll, the ship, the
		// fault annotation and the (possibly repeated) ingest — the dup
		// continued the trace instead of forking a fresh one.
		dupTrace := findTrace(tr, "chaos.dup")
		if dupTrace == nil {
			t.Fatal("no trace annotated chaos.dup")
		}
		for _, want := range []string{"collect.poll", "collect.ship", "classify.ingest"} {
			if !hasSpan(dupTrace, want) {
				t.Errorf("duplicated-delivery trace missing %s span: %v", want, spanNames(dupTrace))
			}
		}

		// The crashed round: the trace ends before the classifier and
		// carries both fault annotations — the delay that put the batch
		// in flight and the loss when the container died under it.
		lostTrace := findTrace(tr, "chaos.lost")
		if lostTrace == nil {
			t.Fatal("no trace annotated chaos.lost")
		}
		for _, want := range []string{"collect.poll", "collect.ship", "chaos.hold"} {
			if !hasSpan(lostTrace, want) {
				t.Errorf("crash-round trace missing %s span: %v", want, spanNames(lostTrace))
			}
		}
		if hasSpan(lostTrace, "classify.ingest") {
			t.Errorf("crash-round trace reached the classifier it crashed: %v", spanNames(lostTrace))
		}

		// The annotated trees still reconstruct: the annotation spans
		// parent under real pipeline spans, not off in orphan roots.
		for _, spans := range [][]trace.Span{dupTrace, lostTrace} {
			roots := trace.BuildTree(spans)
			if len(roots) == 0 {
				t.Fatal("annotated trace does not reconstruct")
			}
		}

		rec := h.Recorder()
		if rec.EventCount(chaos.MetricCrash) != 1 || rec.EventCount(chaos.MetricRestart) != 1 {
			t.Fatalf("crash/restart events = %d/%d",
				rec.EventCount(chaos.MetricCrash), rec.EventCount(chaos.MetricRestart))
		}
	})
}

// findTrace returns the spans of the first stored trace containing a
// span with the given name.
func findTrace(tr *trace.Tracer, name string) []trace.Span {
	for _, id := range tr.Store().TraceIDs() {
		spans := tr.Store().Spans(id)
		for _, sp := range spans {
			if sp.Name == name {
				return spans
			}
		}
	}
	return nil
}

func hasSpan(spans []trace.Span, name string) bool {
	for _, sp := range spans {
		if sp.Name == name {
			return true
		}
	}
	return false
}

func spanNames(spans []trace.Span) []string {
	out := make([]string, len(spans))
	for i, sp := range spans {
		out[i] = sp.Name
	}
	return out
}
