// Package scenarios is the end-to-end chaos suite: scripted failure
// scenarios that drive all four sub-grids — collector (CG), classifier
// (CLG), processor (PG root + workers) and interface (IG) — through the
// internal/chaos harness under seeded fault schedules. Each scenario
// runs for several distinct seeds and asserts grid-level invariants
// (no lost acknowledged observations, replica convergence after repair,
// no contract-net double award, processor-grid idleness) rather than
// mere survival. The suite lives entirely in _test files; this package
// intentionally exports nothing.
package scenarios
