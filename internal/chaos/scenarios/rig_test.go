package scenarios

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/chaos"
	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/workload"
)

const rigRules = `
rule "hot-cpu" level 1 category cpu severity critical {
    when latest(cpu.util) > 95
    then alert "CPU pegged on {device}"
}
rule "low-disk" level 2 category disk {
    when latest(disk.free) < 10
    then alert "disk nearly full on {device}"
}
`

// seeds are the fault-schedule seeds every scenario replays under. A
// failing run names its seed in the subtest name; re-running that
// subtest reproduces the exact schedule.
var seeds = []int64{1, 2, 3}

func forEachSeed(t *testing.T, fn func(t *testing.T, seed int64)) {
	for _, seed := range seeds {
		t.Run(fmt.Sprintf("seed-%d", seed), func(t *testing.T) { fn(t, seed) })
	}
}

// newGrid assembles and starts a management grid with test defaults.
func newGrid(t *testing.T, cfg core.Config) *core.Grid {
	t.Helper()
	if cfg.Rules == "" {
		cfg.Rules = rigRules
	}
	if cfg.HeartbeatEvery == 0 {
		cfg.HeartbeatEvery = 100 * time.Millisecond
	}
	g, err := core.NewGrid(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	t.Cleanup(cancel)
	if err := g.Start(ctx); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { g.Stop() })
	return g
}

// rig is a running grid plus a simulated device fleet and a chaos
// harness over the grid's network and directory. All collection goals
// land on collector 0 so ship errors and trap-driven collections are
// observable in one place.
type rig struct {
	g     *core.Grid
	fleet *device.Fleet
	h     *chaos.Harness
}

func newRig(t *testing.T, cfg core.Config, spec workload.FleetSpec, scenario string, seed int64) *rig {
	t.Helper()
	g := newGrid(t, cfg)

	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fleet.Close() })
	for _, goal := range workload.Goals(spec, fleet, 1, time.Hour)[0] {
		if err := g.Collectors()[0].AddGoal(goal); err != nil {
			t.Fatal(err)
		}
	}

	h, err := chaos.New(chaos.Options{
		Scenario:  fmt.Sprintf("%s-seed%d", scenario, seed),
		Seed:      seed,
		Network:   g.Network(),
		Directory: g.Directory(),
		Tracer:    g.Tracer(),
		Flight:    g.Flight(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return &rig{g: g, fleet: fleet, h: h}
}

// waitFor polls cond until it holds or the timeout expires.
func waitFor(t *testing.T, timeout time.Duration, desc string, cond func() bool) {
	t.Helper()
	deadline := time.After(timeout)
	for !cond() {
		select {
		case <-deadline:
			t.Fatalf("timed out waiting for %s", desc)
		case <-time.After(5 * time.Millisecond):
		}
	}
}
