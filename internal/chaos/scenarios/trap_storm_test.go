package scenarios

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/chaos"
	"agentgrid/internal/collect"
	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/snmp"
	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// TestScenarioTrapStormUnderMessageLoss points device traps at a trap
// watcher and storms faults while 30% of the batch informs headed for
// the classifier are dropped (seeded, so each subtest replays the same
// loss pattern over the same decision sequence). After the loss heals,
// a clean collection round runs.
//
// Invariant: lossy shipping never corrupts the store — every batch the
// network actually delivered is fully present (dropped ones surfaced as
// ship errors, not silent loss), and the processor grid drains.
func TestScenarioTrapStormUnderMessageLoss(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		g := newGrid(t, core.Config{Site: "site1"})
		col := g.Collectors()[0]

		watcher, err := collect.NewTrapWatcher("127.0.0.1:0", col)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { watcher.Close() })

		// NewFleet doesn't set trap destinations, so build the stations
		// by hand, each pointing its traps at the watcher.
		spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: seed}
		var stations []*device.Station
		for _, d := range spec.BuildDevices() {
			st, err := device.StartStation(d, "127.0.0.1:0", "public",
				snmp.WithTrapDestination(watcher.Addr()))
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { st.Close() })
			stations = append(stations, st)
			if err := col.AddGoal(collect.Goal{
				Name:     "monitor-" + d.Name(),
				Site:     "site1",
				Device:   d.Name(),
				Class:    string(d.Class()),
				Addr:     st.Addr(),
				Interval: time.Hour,
			}); err != nil {
				t.Fatal(err)
			}
		}

		h, err := chaos.New(chaos.Options{
			Scenario:  fmt.Sprintf("trap-storm-seed%d", seed),
			Seed:      seed,
			Network:   g.Network(),
			Directory: g.Directory(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(h.Close)

		// 30% of batch informs to the classifier die on the wire.
		lossy := transport.When(func(_, to string, m *acl.Message) bool {
			return to == "inproc://clg" && m.Language == "xml"
		}, transport.Sometimes(seed, 0.30, transport.Drop()))

		delivered := func() int {
			n := 0
			for _, e := range h.Trace() {
				if e.To == "inproc://clg" && e.Verdict == "deliver" {
					n++
				}
			}
			return n
		}

		err = h.Run(chaos.Scenario{Name: "trap-storm", Steps: []chaos.Step{
			{At: 0, Name: "start-loss", Do: func(h *chaos.Harness) error {
				h.SetPlan(lossy)
				return nil
			}},
			{At: 10 * time.Millisecond, Name: "storm", Do: func(h *chaos.Harness) error {
				// Keep storming until the loss pattern has both dropped
				// and delivered batches (UDP trap delivery itself is
				// best-effort, so drive by observed effect, not count).
				waitFor(t, 30*time.Second, "storm took losses and deliveries", func() bool {
					for _, st := range stations {
						_ = st.SendFaultTrap(device.FaultCPUPegged)
					}
					return h.Recorder().EventCount(chaos.MetricDrop) > 0 && delivered() > 0
				})
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "heal", Do: func(h *chaos.Harness) error {
				h.Heal()
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "clean-round", Do: func(*chaos.Harness) error {
				return g.CollectNow(context.Background())
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		traps, collections, _ := watcher.Stats()
		if traps == 0 || collections == 0 {
			t.Fatalf("trap path unused: traps=%d collections=%d", traps, collections)
		}
		if col.Stats().ShipErrors == 0 {
			t.Fatal("dropped batches produced no ship errors")
		}
		// Classification is asynchronous: poll until delivered batches
		// finish landing, then pin the invariant.
		waitFor(t, 15*time.Second, "delivered batches stored", func() bool {
			return chaos.DeliveredBatchesStored(h.Trace(), "inproc://clg", g.Store()) == nil
		})
		if err := chaos.DeliveredBatchesStored(h.Trace(), "inproc://clg", g.Store()); err != nil {
			t.Fatal(err)
		}
		if err := chaos.Idle(g.Root(), 15*time.Second); err != nil {
			t.Fatal(err)
		}
		if h.Recorder().EventCount(chaos.MetricHeal) != 1 {
			t.Fatalf("heal events = %d, want 1", h.Recorder().EventCount(chaos.MetricHeal))
		}
	})
}
