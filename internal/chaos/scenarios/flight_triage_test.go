package scenarios

import (
	"context"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/chaos"
	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/telemetry"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// TestScenarioFlightTriageLoop closes the loop the flight recorder
// exists for: a chaos fault fires mid-pipeline, the recorder auto-dumps
// the wide-event ring, the telemetry histograms retain trace exemplars
// for the work that ran under the fault, and the exemplar's trace ID
// resolves to a complete span tree — the exact sequence an operator
// walks (flight dump → hot bucket → exemplar → span tree) when paged.
//
// Invariants: installing a fault plan snapshots the ring unprompted; a
// later snapshot carries the journaled chaos.fault events; the ingest
// histogram's hottest exemplar-bearing bucket names a trace the tracer
// still holds; and that trace reconstructs with no orphaned spans.
func TestScenarioFlightTriageLoop(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		spec := workload.FleetSpec{Site: "site1", Hosts: 3, Seed: seed}
		r := newRig(t, core.Config{Site: "site1"}, spec, "flight-triage", seed)
		g, h := r.g, r.h

		// Peg two devices so the rules pipeline has alerts to raise once
		// collection rounds run.
		for i := 0; i < 2; i++ {
			r.fleet.Stations()[i].Device.InjectFault(device.FaultCPUPegged)
		}

		// 30% of batch informs headed for the classifier die on the wire.
		lossy := transport.When(func(_, to string, m *acl.Message) bool {
			return to == "inproc://clg" && m.Language == "xml"
		}, transport.Sometimes(seed, 0.30, transport.Drop()))

		err := h.Run(chaos.Scenario{Name: "flight-triage", Steps: []chaos.Step{
			{At: 0, Name: "inject-loss", Do: func(h *chaos.Harness) error {
				h.SetPlan(lossy) // must auto-dump the ring
				return nil
			}},
			{At: 10 * time.Millisecond, Name: "collect-under-loss", Do: func(h *chaos.Harness) error {
				waitFor(t, 30*time.Second, "wire losses observed", func() bool {
					r.fleet.Advance(1)
					_ = g.CollectNow(context.Background())
					return h.Recorder().EventCount(chaos.MetricDrop) > 0
				})
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "escalate", Do: func(h *chaos.Harness) error {
				// Re-arming the plan snapshots the ring again — this dump
				// carries the first fault's wake.
				h.SetPlan(lossy)
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "heal-clean-round", Do: func(h *chaos.Harness) error {
				h.Heal()
				r.fleet.Advance(1)
				return g.CollectNow(context.Background())
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}
		waitFor(t, 30*time.Second, "alerts raised", func() bool {
			r.fleet.Advance(1)
			_ = g.CollectNow(context.Background())
			return len(g.Alerts()) > 0
		})
		if err := chaos.Idle(g.Root(), 15*time.Second); err != nil {
			t.Fatal(err)
		}

		// 1. The fault injections snapshot the ring without being asked.
		dumps := g.Flight().Dumps()
		if len(dumps) < 2 {
			t.Fatalf("fault plans produced %d flight dumps, want >= 2", len(dumps))
		}
		planDumps := 0
		faultEventDumped := false
		for _, d := range dumps {
			if strings.Contains(d.Reason, "chaos: fault plan installed") {
				planDumps++
			}
			for _, e := range d.Events {
				if e.Name == "chaos.fault" {
					faultEventDumped = true
					break
				}
			}
		}
		if planDumps < 2 {
			t.Fatalf("%d of %d dumps were plan-install auto-dumps, want >= 2: %+v", planDumps, len(dumps), dumps)
		}
		if !faultEventDumped {
			t.Fatal("no retained dump carries a journaled chaos.fault event")
		}

		// 2. The journal saw the pipeline, not just the faults.
		stages := g.Flight().Stats().Stages
		for _, want := range []string{"collect.poll", "classify.ingest", "chaos.fault"} {
			if stages[want].Events == 0 {
				t.Fatalf("stage %q never journaled; stages: %+v", want, stages)
			}
		}

		// 3. The ingest histogram's hottest exemplar-bearing bucket
		// resolves to a span tree with no orphans — the operator's jump
		// from metric to trace works end to end.
		ex := hottestExemplar(t, g.Metrics().Snapshot(), "agentgrid_classify_ingest_seconds")
		spans, ok := g.Tracer().Lookup(ex.TraceID)
		if !ok {
			t.Fatalf("exemplar trace %s not retained by the tracer", ex.TraceID)
		}
		roots := trace.BuildTree(spans)
		if len(roots) == 0 {
			t.Fatalf("exemplar trace %s built an empty tree from %d spans", ex.TraceID, len(spans))
		}
		for _, root := range roots {
			if root.Span.Parent != 0 {
				t.Fatalf("span %q orphaned in exemplar trace %s (parent %x missing)",
					root.Span.Name, ex.TraceID, root.Span.Parent)
			}
		}
		if rendered := trace.Render(spans); !strings.Contains(rendered, "classify.ingest") {
			t.Fatalf("rendered exemplar trace misses the ingest span:\n%s", rendered)
		}
	})
}

// hottestExemplar returns the exemplar of the highest-count bucket (per
// bucket, not cumulative) among the metric's exemplar-bearing buckets.
func hottestExemplar(t *testing.T, snap telemetry.Snapshot, metric string) telemetry.Exemplar {
	t.Helper()
	var best telemetry.Exemplar
	bestCount := uint64(0)
	found := false
	for _, m := range snap.Metrics {
		if m.Name != metric {
			continue
		}
		for _, s := range m.Series {
			if s.Hist == nil {
				continue
			}
			for _, ex := range s.Hist.Exemplars {
				n := bucketCount(s.Hist, ex.LE)
				if !found || n > bestCount {
					best, bestCount, found = ex, n, true
				}
			}
		}
	}
	if !found {
		t.Fatalf("metric %s retained no exemplars", metric)
	}
	return best
}

// bucketCount converts the snapshot's cumulative counts back to the
// per-bucket count for the bucket with upper bound le (le < 0 means the
// +Inf overflow bucket).
func bucketCount(h *telemetry.HistogramSnapshot, le float64) uint64 {
	var prev uint64
	for _, b := range h.Buckets {
		if b.LE == le {
			return b.Count - prev
		}
		prev = b.Count
	}
	// Overflow bucket: total minus the last finite cumulative count.
	return h.Count - prev
}
