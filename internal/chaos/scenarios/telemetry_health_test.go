package scenarios

import (
	"context"
	"strings"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/chaos"
	"agentgrid/internal/core"
	"agentgrid/internal/workload"
)

// TestScenarioTelemetryHealthRecovery drives the grid's measured-load
// and health signals through a full degradation cycle. A wedged agent
// on pg-1 pushes the container's telemetry-derived load toward 1, and
// the load reporter makes that visible in the directory without any
// cooperation from the analysis worker. Detaching the container flips
// the grid's "containers" health check to unhealthy with the culprit
// named; re-attaching and clearing the wedge flips it back and the
// directory's view of the load recovers.
//
// Invariants: health degradation names the detached container, and
// both the health check and the measured load return to their
// pre-fault state after repair — no operator reset required.
func TestScenarioTelemetryHealthRecovery(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		spec := workload.FleetSpec{Site: "site1", Hosts: 1, Seed: seed}
		cfg := core.Config{
			Site:           "site1",
			Analyzers:      2,
			HeartbeatEvery: 100 * time.Millisecond,
		}
		r := newRig(t, cfg, spec, "telemetry-health", seed)
		g, h := r.g, r.h

		c1, ok := g.Container("pg-1")
		if !ok {
			t.Fatal("no pg-1 container")
		}
		healthy := func() bool {
			ok, _ := g.Health().Check()
			return ok
		}
		containersDetail := func() string {
			_, results := g.Health().Check()
			for _, res := range results {
				if res.Name == "containers" && !res.Healthy {
					return res.Detail
				}
			}
			return ""
		}

		release := make(chan struct{})
		released := false
		t.Cleanup(func() {
			if !released {
				close(release)
			}
		})

		err := h.Run(chaos.Scenario{Name: "telemetry-health", Steps: []chaos.Step{
			{At: 0, Name: "baseline-healthy", Do: func(*chaos.Harness) error {
				waitFor(t, 5*time.Second, "all health checks passing", healthy)
				return nil
			}},
			{At: 10 * time.Millisecond, Name: "wedge-pg-1", Do: func(*chaos.Harness) error {
				wedge, err := c1.SpawnAgent("wedge", agent.WithMailboxSize(4))
				if err != nil {
					return err
				}
				wedge.HandleFunc(agent.Selector{Performative: acl.Inform}, func(context.Context, *agent.Agent, *acl.Message) {
					<-release
				})
				// The run loop pops one message into the blocked handler,
				// so keep refilling until the mailbox reads full.
				waitFor(t, 5*time.Second, "pg-1 telemetry load near 1", func() bool {
					wedge.Deliver(&acl.Message{Performative: acl.Inform}) // errors once full are the point
					return c1.TelemetryLoad() >= 0.9
				})
				waitFor(t, 5*time.Second, "directory to see pg-1's measured load", func() bool {
					reg, ok := g.Directory().Get("pg-1")
					return ok && reg.Load > 0.9
				})
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "detach-pg-1", Do: func(*chaos.Harness) error {
				if err := c1.Detach(); err != nil {
					return err
				}
				waitFor(t, 5*time.Second, "health to flip unhealthy", func() bool { return !healthy() })
				if detail := containersDetail(); !strings.Contains(detail, "pg-1") {
					t.Fatalf("containers check detail %q does not name pg-1", detail)
				}
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "repair", Do: func(*chaos.Harness) error {
				if err := c1.AttachInProc(g.Network(), "inproc://pg-1"); err != nil {
					return err
				}
				close(release)
				released = true
				if err := c1.KillAgent("wedge"); err != nil {
					return err
				}
				waitFor(t, 5*time.Second, "health to flip back healthy", healthy)
				waitFor(t, 5*time.Second, "directory load to recover", func() bool {
					reg, ok := g.Directory().Get("pg-1")
					return ok && reg.Load < 0.5
				})
				return nil
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}
	})
}
