package scenarios

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/chaos"
	"agentgrid/internal/classify"
	"agentgrid/internal/core"
	"agentgrid/internal/directory"
	"agentgrid/internal/obs"
	"agentgrid/internal/workload"
)

// TestScenarioClassifierCrashMidIngest kills the classifier container
// between two ingest rounds: round 1 lands normally, round 2 ships into
// the void (collectors count ship errors), then the container restarts
// — fresh classifier and store-query agents, re-registered with the
// directory — and round 3 flows end to end again.
//
// Invariants: no acknowledged observation is lost (every batch the
// network delivered is present in the store) and the processor grid
// drains (WaitIdle).
func TestScenarioClassifierCrashMidIngest(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: seed}
		r := newRig(t, core.Config{Site: "site1"}, spec, "classifier-crash", seed)
		g, h := r.g, r.h

		clgC, ok := g.Container("clg")
		if !ok {
			t.Fatal("no clg container")
		}
		// Restarting the container means restarting its process: the
		// classifier and store-query agents are rebuilt from scratch
		// against the surviving store.
		rewire := func() error {
			ca, err := clgC.SpawnAgent("classifier")
			if err != nil {
				return err
			}
			if _, err := classify.New(ca, classify.Config{
				Store:     g.Store(),
				Processor: g.Root().Agent().ID(),
				Ontology:  obs.NewOntology(),
			}); err != nil {
				return err
			}
			sq, err := clgC.SpawnAgent(core.StoreQueryAgentName)
			if err != nil {
				return err
			}
			_, err = core.NewStoreQueryServer(sq, g.Store())
			return err
		}
		if err := h.AddTarget(chaos.Target{
			Container: clgC,
			Addr:      "inproc://clg",
			Services:  []directory.ServiceDesc{{Type: directory.ServiceClassification}},
			Rewire:    rewire,
		}); err != nil {
			t.Fatal(err)
		}

		col := g.Collectors()[0]
		err := h.Run(chaos.Scenario{Name: "classifier-crash", Steps: []chaos.Step{
			{At: 0, Name: "ingest-1", Do: func(*chaos.Harness) error {
				return g.CollectNow(context.Background())
			}},
			{At: 10 * time.Millisecond, Name: "settle-1", Do: func(*chaos.Harness) error {
				// 2 hosts x 4 metrics land before the crash.
				waitFor(t, 15*time.Second, "round-1 series", func() bool {
					n, _ := g.Store().Stats()
					return n == 8
				})
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "crash-clg", Do: func(h *chaos.Harness) error {
				return h.Crash("clg")
			}},
			{At: 30 * time.Millisecond, Name: "ingest-into-void", Do: func(*chaos.Harness) error {
				r.fleet.Advance(1)
				// Shipping fails while the classifier is down; the
				// collector must notice (ship errors), not lose silently.
				_ = g.CollectNow(context.Background())
				waitFor(t, 15*time.Second, "ship errors", func() bool {
					return col.Stats().ShipErrors > 0
				})
				return nil
			}},
			{At: 40 * time.Millisecond, Name: "restart-clg", Do: func(h *chaos.Harness) error {
				return h.Restart("clg")
			}},
			{At: 50 * time.Millisecond, Name: "ingest-3", Do: func(*chaos.Harness) error {
				r.fleet.Advance(1)
				return g.CollectNow(context.Background())
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		if _, ok := g.Directory().Get("clg"); !ok {
			t.Fatal("restarted classifier not re-registered")
		}
		// Classification is asynchronous: poll the invariant until the
		// delivered batches finish landing, then pin it.
		waitFor(t, 15*time.Second, "delivered batches stored", func() bool {
			return chaos.DeliveredBatchesStored(h.Trace(), "inproc://clg", g.Store()) == nil
		})
		if err := chaos.DeliveredBatchesStored(h.Trace(), "inproc://clg", g.Store()); err != nil {
			t.Fatal(err)
		}
		if err := chaos.Idle(g.Root(), 15*time.Second); err != nil {
			t.Fatal(err)
		}
		rec := h.Recorder()
		if rec.EventCount(chaos.MetricCrash) != 1 || rec.EventCount(chaos.MetricRestart) != 1 {
			t.Fatalf("crash/restart events = %d/%d",
				rec.EventCount(chaos.MetricCrash), rec.EventCount(chaos.MetricRestart))
		}
	})
}
