package scenarios

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/chaos"
	"agentgrid/internal/classify"
	"agentgrid/internal/core"
	"agentgrid/internal/directory"
	"agentgrid/internal/obs"
	"agentgrid/internal/store"
	"agentgrid/internal/workload"
)

// TestScenarioPartitionCrashKeepsOtherDomainsFlowing kills one
// classifier partition of a four-way partitioned grid mid-ingest. The
// management domains owned by the other partitions must never stall:
// their ingest keeps landing on their own partition stores, and even
// the crashed partition's devices keep flowing — the collector router
// skips the unhealthy partition and dispatches to the next healthy one,
// so no batch ships into the void and no ship errors accrue. After a
// restart the owner takes its domain back.
func TestScenarioPartitionCrashKeepsOtherDomainsFlowing(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		const hosts = 8 // host-01..08 spread 2 per partition (FNV site-hash)
		const parts = 4
		const metricsPerHost = 4
		spec := workload.FleetSpec{Site: "site1", Hosts: hosts, Seed: seed}
		r := newRig(t, core.Config{Site: "site1", Classifiers: parts}, spec, "partition-crash", seed)
		g, h := r.g, r.h

		// Ownership is the published hash mapping; pick host-01's
		// partition as the victim and register it as a crash target.
		victim := store.PartitionIndex("site1", "host-01", parts)
		victimName := fmt.Sprintf("clg-%d", victim+1)
		victimC, ok := g.Container(victimName)
		if !ok {
			t.Fatalf("no %s container", victimName)
		}
		rewire := func() error {
			ca, err := victimC.SpawnAgent("classifier")
			if err != nil {
				return err
			}
			if _, err := classify.New(ca, classify.Config{
				Store:     g.Stores()[victim],
				Processor: g.Root().Agent().ID(),
				Ontology:  obs.NewOntology(),
			}); err != nil {
				return err
			}
			sq, err := victimC.SpawnAgent(core.StoreQueryAgentName)
			if err != nil {
				return err
			}
			_, err = core.NewStoreQueryServer(sq, g.Stores()[victim])
			return err
		}
		if err := h.AddTarget(chaos.Target{
			Container: victimC,
			Addr:      "inproc://" + victimName,
			Services:  []directory.ServiceDesc{{Type: directory.ServiceClassification}},
			Rewire:    rewire,
		}); err != nil {
			t.Fatal(err)
		}

		stores := g.Stores()
		appendsOf := func(i int) uint64 {
			_, a := stores[i].Stats()
			return a
		}
		fedAppends := func() uint64 {
			_, a := g.Federation().Stats()
			return a
		}
		col := g.Collectors()[0]

		var afterCrash [parts]uint64
		err := h.Run(chaos.Scenario{Name: "partition-crash", Steps: []chaos.Step{
			{At: 0, Name: "ingest-1", Do: func(*chaos.Harness) error {
				return g.CollectNow(context.Background())
			}},
			{At: 10 * time.Millisecond, Name: "settle-1", Do: func(*chaos.Harness) error {
				// Round 1 lands every domain on its owning partition.
				waitFor(t, 15*time.Second, "round-1 ingest", func() bool {
					return fedAppends() == hosts*metricsPerHost
				})
				for i := 0; i < parts; i++ {
					if appendsOf(i) == 0 {
						return fmt.Errorf("partition %d took no round-1 ingest", i)
					}
				}
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "crash-victim", Do: func(h *chaos.Harness) error {
				return h.Crash(victimName)
			}},
			{At: 30 * time.Millisecond, Name: "ingest-around-crash", Do: func(*chaos.Harness) error {
				for i := 0; i < parts; i++ {
					afterCrash[i] = appendsOf(i)
				}
				r.fleet.Advance(1)
				if err := g.CollectNow(context.Background()); err != nil {
					return err
				}
				// Every record of round 2 lands despite the dead
				// partition: the router detours its domain to the next
				// healthy classifier.
				waitFor(t, 15*time.Second, "round-2 ingest", func() bool {
					return fedAppends() == 2*hosts*metricsPerHost
				})
				return nil
			}},
			{At: 40 * time.Millisecond, Name: "restart-victim", Do: func(h *chaos.Harness) error {
				return h.Restart(victimName)
			}},
			{At: 50 * time.Millisecond, Name: "ingest-3", Do: func(*chaos.Harness) error {
				r.fleet.Advance(1)
				return g.CollectNow(context.Background())
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		// The dead partition took nothing while down; every healthy
		// partition kept ingesting its own domain (and the detoured one
		// absorbed the victim's devices on top).
		if got := afterCrash[victim]; appendsOf(victim) < got {
			t.Fatalf("victim partition appends went backwards: %d -> %d", got, appendsOf(victim))
		}
		healthyGrew := 0
		for i := 0; i < parts; i++ {
			if i != victim && appendsOf(i) > afterCrash[i] {
				healthyGrew++
			}
		}
		if healthyGrew != parts-1 {
			t.Fatalf("only %d of %d healthy partitions ingested during the crash", healthyGrew, parts-1)
		}
		// No batch shipped into the void: the router never dispatched to
		// the dead partition.
		if errs := col.Stats().ShipErrors; errs != 0 {
			t.Fatalf("collector logged %d ship errors; rerouting should avoid the dead partition", errs)
		}

		// Round 3, after restart: the owner takes its domain back.
		waitFor(t, 15*time.Second, "round-3 ingest", func() bool {
			return fedAppends() == 3*hosts*metricsPerHost
		})
		waitFor(t, 15*time.Second, "victim back in rotation", func() bool {
			return appendsOf(victim) > afterCrash[victim]
		})
		if _, ok := g.Directory().Get(victimName); !ok {
			t.Fatal("restarted partition not re-registered")
		}
		gs := g.Status()
		if len(gs.Partitions) != parts {
			t.Fatalf("status has %d partitions, want %d", len(gs.Partitions), parts)
		}
		for _, p := range gs.Partitions {
			if !p.Healthy {
				t.Fatalf("partition %d still unhealthy after restart", p.Partition)
			}
		}
		if err := chaos.Idle(g.Root(), 15*time.Second); err != nil {
			t.Fatal(err)
		}
	})
}
