package scenarios

import (
	"context"
	"testing"
	"time"

	"agentgrid/internal/chaos"
	"agentgrid/internal/core"
	"agentgrid/internal/transport"
	"agentgrid/internal/workload"
)

// TestScenarioPartitionDuringContractNet cuts the link between the PG
// root and both workers while analysis tasks are being auctioned. With
// every cfp failing, the root gets no proposals and abandons the tasks;
// after the partition heals a fresh ingest round auctions and completes
// normally.
//
// Invariants: the contract-net never awards one conversation to two
// workers (even across the partition boundary), and the root drains
// after heal.
func TestScenarioPartitionDuringContractNet(t *testing.T) {
	forEachSeed(t, func(t *testing.T, seed int64) {
		spec := workload.FleetSpec{Site: "site1", Hosts: 2, Seed: seed}
		cfg := core.Config{
			Site:        "site1",
			Negotiated:  true,
			BidWindow:   500 * time.Millisecond,
			TaskTimeout: time.Second,
		}
		r := newRig(t, cfg, spec, "partition-contractnet", seed)
		g, h := r.g, r.h

		partition := transport.Partition(
			[]string{"inproc://pg-root"},
			[]string{"inproc://pg-1", "inproc://pg-2"},
		)
		err := h.Run(chaos.Scenario{Name: "partition-contractnet", Steps: []chaos.Step{
			{At: 0, Name: "partition", Do: func(h *chaos.Harness) error {
				h.SetPlan(partition)
				return nil
			}},
			{At: 10 * time.Millisecond, Name: "ingest-partitioned", Do: func(*chaos.Harness) error {
				if err := g.CollectNow(context.Background()); err != nil {
					return err
				}
				// Every cfp dies on the wire, so the root collects zero
				// proposals and abandons each task.
				waitFor(t, 15*time.Second, "abandoned tasks", func() bool {
					return g.Root().Stats().Abandoned > 0
				})
				return nil
			}},
			{At: 20 * time.Millisecond, Name: "heal", Do: func(h *chaos.Harness) error {
				h.Heal()
				return nil
			}},
			{At: 30 * time.Millisecond, Name: "ingest-healed", Do: func(*chaos.Harness) error {
				r.fleet.Advance(1)
				if err := g.CollectNow(context.Background()); err != nil {
					return err
				}
				waitFor(t, 15*time.Second, "completed tasks", func() bool {
					return g.Root().Stats().Completed > 0
				})
				return nil
			}},
		}})
		if err != nil {
			t.Fatal(err)
		}

		if err := chaos.NoDoubleAward(h.Trace()); err != nil {
			t.Fatal(err)
		}
		if err := chaos.Idle(g.Root(), 15*time.Second); err != nil {
			t.Fatal(err)
		}
		rec := h.Recorder()
		if rec.EventCount(chaos.MetricDrop) == 0 {
			t.Fatal("partition recorded no dropped messages")
		}
		if rec.EventCount(chaos.MetricHeal) != 1 {
			t.Fatalf("heal events = %d, want 1", rec.EventCount(chaos.MetricHeal))
		}
	})
}
