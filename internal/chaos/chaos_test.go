package chaos

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/directory"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/store"
	"agentgrid/internal/transport"
)

func chaosMsg(content string) *acl.Message {
	return &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("src", "test"),
		Receivers:    []acl.AID{acl.NewAID("dst", "test")},
		Content:      []byte(content),
	}
}

// orderedInbox records message contents in arrival order.
type orderedInbox struct {
	mu  sync.Mutex
	got []string
}

func (o *orderedInbox) handle(m *acl.Message) {
	o.mu.Lock()
	defer o.mu.Unlock()
	o.got = append(o.got, string(m.Content))
}

func (o *orderedInbox) contents() []string {
	o.mu.Lock()
	defer o.mu.Unlock()
	return append([]string(nil), o.got...)
}

func TestAdvanceReleasesHeldMessagesInDueOrder(t *testing.T) {
	n := transport.NewInProcNetwork()
	var inbox orderedInbox
	if _, err := n.Endpoint("inproc://dst", inbox.handle); err != nil {
		t.Fatal(err)
	}
	src, err := n.Endpoint("inproc://src", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	h, err := New(Options{Scenario: "reorder", Seed: 1, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	// Per-message delays: "slow" waits 10ms, "fast" 2ms. Sent in order
	// slow, fast — delivered in order fast, slow.
	h.SetPlan(transport.PlanFunc(func(_, _ string, m *acl.Message) transport.Decision {
		if string(m.Content) == "slow" {
			return transport.Decision{Delay: 10 * time.Millisecond}
		}
		return transport.Decision{Delay: 2 * time.Millisecond}
	}))
	for _, c := range []string{"slow", "fast"} {
		if err := src.Send(context.Background(), "inproc://dst", chaosMsg(c)); err != nil {
			t.Fatal(err)
		}
	}
	if got := inbox.contents(); len(got) != 0 {
		t.Fatalf("messages delivered before clock advanced: %v", got)
	}
	if h.HeldMessages() != 2 {
		t.Fatalf("held = %d, want 2", h.HeldMessages())
	}

	h.Advance(5 * time.Millisecond)
	if got := inbox.contents(); len(got) != 1 || got[0] != "fast" {
		t.Fatalf("after 5ms got %v, want [fast]", got)
	}
	h.Advance(5 * time.Millisecond)
	if got := inbox.contents(); len(got) != 2 || got[1] != "slow" {
		t.Fatalf("after 10ms got %v, want [fast slow]", got)
	}
	if h.Now() != 10*time.Millisecond {
		t.Fatalf("clock = %v", h.Now())
	}
	if h.HeldMessages() != 0 {
		t.Fatalf("held = %d after release", h.HeldMessages())
	}
	if n := h.Recorder().EventCount(MetricRelease); n != 2 {
		t.Fatalf("release events = %d", n)
	}
}

func TestCrashRestartCycle(t *testing.T) {
	n := transport.NewInProcNetwork()
	dir := directory.New(time.Hour)
	c, err := platform.New(platform.Config{
		Name: "c1", Platform: "c1",
		Profile: directory.ResourceProfile{CPUCapacity: 1, NetCapacity: 1, DiscCapacity: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.AttachInProc(n, "inproc://c1"); err != nil {
		t.Fatal(err)
	}
	var inbox orderedInbox
	spawnSink := func() error {
		a, err := c.SpawnAgent("sink")
		if err != nil {
			return err
		}
		a.HandleFunc(agent.Selector{}, func(_ context.Context, _ *agent.Agent, m *acl.Message) {
			inbox.handle(m)
		})
		return nil
	}
	if err := spawnSink(); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := c.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer c.Stop()
	services := []directory.ServiceDesc{{Type: directory.ServiceCollection}}
	if err := dir.Register(c.Registration(services)); err != nil {
		t.Fatal(err)
	}

	h, err := New(Options{Scenario: "crash", Seed: 2, Network: n, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	if err := h.AddTarget(Target{
		Container: c, Addr: "inproc://c1", Services: services, Rewire: spawnSink,
	}); err != nil {
		t.Fatal(err)
	}
	if err := h.Crash("nosuch"); err == nil {
		t.Fatal("crash of unknown target succeeded")
	}

	probe, err := n.Endpoint("inproc://probe", func(*acl.Message) {})
	if err != nil {
		t.Fatal(err)
	}
	to := &acl.Message{
		Performative: acl.Inform,
		Sender:       acl.NewAID("probe", "probe"),
		Receivers:    []acl.AID{acl.NewAID("sink", "c1")},
		Content:      []byte("hello"),
	}
	if err := probe.Send(context.Background(), "inproc://c1", to); err != nil {
		t.Fatal(err)
	}
	// Mailbox processing is asynchronous; let the message land before the
	// crash kills the agent, or it dies unprocessed in the mailbox.
	deadline := time.After(5 * time.Second)
	for len(inbox.contents()) < 1 {
		select {
		case <-deadline:
			t.Fatal("first message never processed")
		case <-time.After(2 * time.Millisecond):
		}
	}

	if err := h.Crash("c1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := dir.Get("c1"); ok {
		t.Fatal("crashed container still registered")
	}
	if len(c.AgentNames()) != 0 {
		t.Fatalf("agents survived crash: %v", c.AgentNames())
	}
	err = probe.Send(context.Background(), "inproc://c1", to.Clone())
	if !errors.Is(err, transport.ErrUnknownAddr) {
		t.Fatalf("send to crashed container: %v", err)
	}

	if err := h.Restart("c1"); err != nil {
		t.Fatal(err)
	}
	if _, ok := dir.Get("c1"); !ok {
		t.Fatal("restarted container not re-registered")
	}
	if err := probe.Send(context.Background(), "inproc://c1", to.Clone()); err != nil {
		t.Fatal(err)
	}
	deadline = time.After(5 * time.Second)
	for len(inbox.contents()) < 2 {
		select {
		case <-deadline:
			t.Fatalf("restarted agent received %v", inbox.contents())
		case <-time.After(2 * time.Millisecond):
		}
	}
	rec := h.Recorder()
	if rec.EventCount(MetricCrash) != 1 || rec.EventCount(MetricRestart) != 1 {
		t.Fatalf("crash/restart events = %d/%d",
			rec.EventCount(MetricCrash), rec.EventCount(MetricRestart))
	}
}

func TestScenarioRunsStepsInTimeOrder(t *testing.T) {
	n := transport.NewInProcNetwork()
	h, err := New(Options{Scenario: "script", Seed: 3, Network: n})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	var order []string
	note := func(name string) func(*Harness) error {
		return func(*Harness) error {
			order = append(order, name)
			return nil
		}
	}
	err = h.Run(Scenario{Name: "script", Steps: []Step{
		{At: 20 * time.Millisecond, Name: "late", Do: note("late")},
		{At: 0, Name: "first", Do: note("first")},
		{At: 10 * time.Millisecond, Name: "mid", Do: note("mid")},
	}})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, ",") != "first,mid,late" {
		t.Fatalf("step order = %v", order)
	}
	if h.Now() != 20*time.Millisecond {
		t.Fatalf("clock after run = %v", h.Now())
	}
	// seed echo + 3 steps.
	if got := h.Recorder().EventCount(MetricStep); got != 4 {
		t.Fatalf("step events = %d", got)
	}
	// Events land in the recorder's store as queryable series.
	if p, ok := h.Recorder().Store().Latest("script/seed/" + MetricStep); !ok || p.Value != 3 {
		t.Fatalf("seed event = %+v, %v", p, ok)
	}

	boom := errors.New("boom")
	err = h.Run(Scenario{Name: "fails", Steps: []Step{
		{At: 0, Name: "bad", Do: func(*Harness) error { return boom }},
	}})
	if !errors.Is(err, boom) {
		t.Fatalf("failing step error = %v", err)
	}
}

func TestNoDoubleAwardInvariant(t *testing.T) {
	accept := func(conv, rcv string) TraceEntry {
		return TraceEntry{Msg: &acl.Message{
			Performative:   acl.AcceptProposal,
			ConversationID: conv,
			Receivers:      []acl.AID{acl.NewAID(rcv, "pg")},
		}, Verdict: "deliver"}
	}
	ok := []TraceEntry{accept("t1", "w1"), accept("t1", "w1"), accept("t2", "w2")}
	if err := NoDoubleAward(ok); err != nil {
		t.Fatalf("single-winner trace rejected: %v", err)
	}
	bad := []TraceEntry{accept("t1", "w1"), accept("t1", "w2")}
	if err := NoDoubleAward(bad); err == nil {
		t.Fatal("double award not detected")
	}
}

func TestReplicasConvergedInvariant(t *testing.T) {
	a, b := store.New(0), store.New(0)
	rec := obs.Record{Site: "s", Device: "d", Metric: "cpu.util", Value: 1, Step: 1}
	if err := a.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := b.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := ReplicasConverged(a, b); err != nil {
		t.Fatalf("equal stores diverged: %v", err)
	}
	rec.Step, rec.Value = 2, 9
	if err := b.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := ReplicasConverged(a, b); err == nil {
		t.Fatal("divergence not detected")
	}
}

func TestDeliveredBatchesStoredInvariant(t *testing.T) {
	rec := obs.Record{Site: "s", Device: "d", Metric: "cpu.util", Value: 1, Step: 1}
	batch := &obs.Batch{Collector: "col", Records: []obs.Record{rec}}
	content, err := obs.MarshalBatch(batch)
	if err != nil {
		t.Fatal(err)
	}
	entry := func(verdict string) TraceEntry {
		return TraceEntry{To: "inproc://clg", Verdict: verdict, Msg: &acl.Message{
			Performative: acl.Inform, Language: "xml", Content: content,
		}}
	}
	st := store.New(0)
	// Dropped batches are exempt even when the store is empty.
	if err := DeliveredBatchesStored([]TraceEntry{entry("drop")}, "inproc://clg", st); err != nil {
		t.Fatalf("dropped batch counted: %v", err)
	}
	// A delivered batch missing from the store is a lost observation.
	if err := DeliveredBatchesStored([]TraceEntry{entry("deliver")}, "inproc://clg", st); err == nil {
		t.Fatal("lost delivered batch not detected")
	}
	if err := st.Append(rec); err != nil {
		t.Fatal(err)
	}
	if err := DeliveredBatchesStored([]TraceEntry{entry("deliver")}, "inproc://clg", st); err != nil {
		t.Fatalf("stored batch flagged: %v", err)
	}
}
