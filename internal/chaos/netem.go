package chaos

import (
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/flight"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
)

// netem is the network emulator the harness installs on an
// InProcNetwork. It wraps the scenario's fault plan, records every
// verdict in the trace and event log, and — as the network's Holder —
// captures delayed messages until the virtual clock reaches their due
// time. Reordering emerges from release order alone: messages release
// in (due time, sequence) order, so a message jittered 9ms is overtaken
// by one jittered 2ms that was sent later.
type netem struct {
	net    *transport.InProcNetwork
	clock  *Clock
	rec    *Recorder
	tracer *trace.Tracer   // nil when the run is untraced
	flight *flight.Journal // nil when the run has no flight recorder

	mu   sync.Mutex
	plan transport.FaultPlan // guarded by mu
	held []heldMsg           // guarded by mu
	seq  int                 // guarded by mu
}

type heldMsg struct {
	due  time.Duration
	seq  int
	from string
	to   string
	msg  *acl.Message
}

func newNetem(n *transport.InProcNetwork, clock *Clock, rec *Recorder, tracer *trace.Tracer, fr *flight.Recorder) *netem {
	em := &netem{net: n, clock: clock, rec: rec, tracer: tracer, flight: fr.Journal("chaos.fault")}
	n.SetPlan(transport.PlanFunc(em.decide))
	n.SetHolder(em.hold)
	return em
}

// setPlan swaps the scenario fault plan; nil heals the network (the
// emulator stays installed so the trace keeps recording).
func (em *netem) setPlan(p transport.FaultPlan) {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.plan = p
}

// decide consults the scenario plan and records the verdict.
func (em *netem) decide(from, to string, m *acl.Message) transport.Decision {
	em.mu.Lock()
	plan := em.plan
	em.mu.Unlock()
	var d transport.Decision
	if plan != nil {
		d = plan.Decide(from, to, m)
	}
	verdict := "deliver"
	switch {
	case d.Drop:
		verdict = "drop"
	case d.Delay > 0:
		verdict = "hold"
	case d.Dup > 0:
		verdict = "dup"
	}
	// A send to a detached endpoint (crashed container) fails at the
	// transport no matter what the plan said; record it as unroutable so
	// delivery invariants do not count it as acknowledged.
	if verdict != "drop" && !em.net.Lookup(to) {
		verdict = "unroutable"
	}
	em.rec.addTrace(TraceEntry{
		At: em.clock.Now(), From: from, To: to, Msg: m.Clone(), Verdict: verdict,
	})
	if verdict != "deliver" {
		em.annotate(verdict, from, to, m)
		em.journal(verdict, from, to, m)
	}
	switch verdict {
	case "drop":
		em.rec.Event(MetricDrop, link(from, to), 1)
	case "hold":
		em.rec.Event(MetricDelay, link(from, to), d.Delay.Seconds())
	case "dup":
		em.rec.Event(MetricDup, link(from, to), float64(d.Dup))
	}
	return d
}

// hold captures a delayed message for later release.
func (em *netem) hold(from, to string, m *acl.Message, d transport.Decision) bool {
	em.mu.Lock()
	defer em.mu.Unlock()
	em.seq++
	em.held = append(em.held, heldMsg{
		due: em.clock.Now() + d.Delay, seq: em.seq, from: from, to: to, msg: m,
	})
	return true
}

// heldCount returns how many captured messages await release.
func (em *netem) heldCount() int {
	em.mu.Lock()
	defer em.mu.Unlock()
	return len(em.held)
}

// release injects every held message due at or before t in (due, seq)
// order, moving the clock to each message's due time first. A released
// delivery can trigger new sends whose delays also land before t, so
// the loop drains until nothing due remains. The lock is not held
// across Inject: delivery runs receiver handlers synchronously, and
// those may send (and therefore hold) further messages.
func (em *netem) release(t time.Duration) {
	for {
		em.mu.Lock()
		best := -1
		for i, h := range em.held {
			if h.due > t {
				continue
			}
			if best < 0 || h.due < em.held[best].due ||
				(h.due == em.held[best].due && h.seq < em.held[best].seq) {
				best = i
			}
		}
		if best < 0 {
			em.mu.Unlock()
			return
		}
		h := em.held[best]
		em.held = append(em.held[:best], em.held[best+1:]...)
		em.mu.Unlock()

		em.clock.set(h.due)
		// Inject bypasses the plan so a released message is not
		// re-faulted. A missing endpoint means the destination crashed
		// while the message was in flight: it is lost, and recorded so.
		if err := em.net.Inject(h.to, h.msg); err != nil {
			em.rec.Event(MetricLost, link(h.from, h.to), float64(h.seq))
			em.annotate("lost", h.from, h.to, h.msg)
			em.journal("lost", h.from, h.to, h.msg)
			continue
		}
		em.rec.Event(MetricRelease, link(h.from, h.to), float64(h.seq))
	}
}

// annotate stamps an injected fault into the affected trace: a
// zero-length chaos.<verdict> span parented under the message's current
// span, so the span tree shows where the network misbehaved. Untraced
// messages (or an untraced harness) annotate nothing.
func (em *netem) annotate(verdict, from, to string, m *acl.Message) {
	if m.Trace == nil {
		return
	}
	sp := em.tracer.StartSpan("chaos."+verdict, *m.Trace)
	sp.SetAttr("from", from)
	sp.SetAttr("to", to)
	sp.SetAttr("performative", string(m.Performative))
	sp.SetConversation(m.ConversationID)
	sp.End()
}

// journal records the fault as a wide event in the flight recorder so a
// post-incident dump shows exactly which messages were faulted and how.
func (em *netem) journal(verdict, from, to string, m *acl.Message) {
	if em.flight == nil {
		return
	}
	e := flight.Event{
		Container:    link(from, to),
		Conversation: m.ConversationID,
		Size:         len(m.Content),
		Err:          verdict,
	}
	if m.Trace != nil {
		e.TraceID = flight.ParseTraceID(m.Trace.TraceID)
	}
	switch verdict {
	case "drop", "lost", "unroutable":
		e.Outcome = flight.OutcomeDrop
	}
	em.flight.Emit(e)
}

func link(from, to string) string { return from + "->" + to }
