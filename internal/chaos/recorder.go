package chaos

import (
	"strings"
	"sync"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

// Metric names of the chaos events recorded through internal/obs.
// Injected faults use chaos.fault.*, recovery events chaos.recover.*,
// and scenario bookkeeping chaos.step.
const (
	MetricDrop      = "chaos.fault.drop"       // plan dropped a message
	MetricDelay     = "chaos.fault.delay"      // plan held a message (value: seconds)
	MetricDup       = "chaos.fault.dup"        // plan duplicated a message (value: extra copies)
	MetricCrash     = "chaos.fault.crash"      // container crashed
	MetricStoreFail = "chaos.fault.replica"    // replica marked failed
	MetricRelease   = "chaos.recover.release"  // held message delivered
	MetricLost      = "chaos.fault.lost"       // held message had no endpoint at release
	MetricRestart   = "chaos.recover.restart"  // container restarted
	MetricHeal      = "chaos.recover.heal"     // fault plan cleared
	MetricRepair    = "chaos.recover.repair"   // replica repaired
	MetricStep      = "chaos.step"             // scenario step executed
)

// TraceEntry is the network emulator's verdict on one message the fault
// plan inspected. The verdict reflects the plan's decision, not the
// final delivery outcome (a "deliver" to a detached endpoint still
// fails with ErrUnknownAddr at the transport).
type TraceEntry struct {
	// At is the virtual time of the decision.
	At time.Duration
	// From and To are the sender and receiver transport addresses.
	From, To string
	// Msg is a clone of the message as the plan saw it.
	Msg *acl.Message
	// Verdict is "deliver", "drop", "hold", "dup" or "unroutable"
	// (the destination endpoint was detached at decision time).
	Verdict string
}

// Recorder logs every injected fault and recovery event as an
// obs.Record — Site is the scenario name, Device the link or container
// the event hit, Metric a chaos.* name — appending each record to a
// store so tooling can query chaos history like any other series. It
// also keeps the full message trace invariant checkers read.
type Recorder struct {
	scenario string
	clock    *Clock
	st       *store.Store

	mu     sync.Mutex
	step   int          // guarded by mu
	events []obs.Record // guarded by mu
	trace  []TraceEntry // guarded by mu
}

func newRecorder(scenario string, clock *Clock) *Recorder {
	return &Recorder{scenario: scenario, clock: clock, st: store.New(0)}
}

// Event records one chaos event. Device names what the event hit: a
// link ("from->to") or a container name. Slashes are rewritten so the
// store key "site/device/metric" stays parseable.
func (r *Recorder) Event(metric, device string, value float64) {
	device = strings.ReplaceAll(device, "/", "_")
	now := r.clock.Now()
	r.mu.Lock()
	r.step++
	rec := obs.Record{
		Site:   r.scenario,
		Device: device,
		Class:  "chaos",
		Metric: metric,
		Value:  value,
		Step:   r.step,
		// Deterministic timestamp: virtual elapsed time from the epoch.
		Time: time.Unix(0, 0).UTC().Add(now),
	}
	r.events = append(r.events, rec)
	r.mu.Unlock()
	r.st.Append(rec)
}

// Events returns a copy of the event log in record order.
func (r *Recorder) Events() []obs.Record {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]obs.Record(nil), r.events...)
}

// EventCount returns how many recorded events carry the given metric.
func (r *Recorder) EventCount(metric string) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, e := range r.events {
		if e.Metric == metric {
			n++
		}
	}
	return n
}

// Store returns the store the chaos events are appended to.
func (r *Recorder) Store() *store.Store { return r.st }

func (r *Recorder) addTrace(e TraceEntry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.trace = append(r.trace, e)
}

// Trace returns a copy of the message trace in decision order.
func (r *Recorder) Trace() []TraceEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]TraceEntry(nil), r.trace...)
}
