package chaos

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"agentgrid/internal/directory"
	"agentgrid/internal/flight"
	"agentgrid/internal/platform"
	"agentgrid/internal/trace"
	"agentgrid/internal/transport"
)

// Target is a container the harness may crash and restart.
type Target struct {
	// Container is the live container.
	Container *platform.Container
	// Addr is the in-proc address the container re-attaches under.
	Addr string
	// Services is the directory registration restored on restart.
	// Optional: a target with no services skips re-registration.
	Services []directory.ServiceDesc
	// Rewire rebuilds the container's agents after a restart — agents
	// die with the crash, and a restarted process starts fresh ones.
	// Optional.
	Rewire func() error
}

// Options configure a harness.
type Options struct {
	// Scenario names the run; it becomes the Site of every recorded
	// chaos event.
	Scenario string
	// Seed is the scenario's randomness seed. The harness echoes it
	// into the event log so a failing run names the seed that replays
	// it; fault plans built with transport.Sometimes/Jitter should use
	// the same value.
	Seed int64
	// Network is the in-process network faults are injected into.
	Network *transport.InProcNetwork
	// Directory, when set, loses crashed containers and re-learns
	// restarted ones.
	Directory *directory.Directory
	// Tracer, when set, stamps injected faults into affected traces: a
	// message carrying trace context that is dropped, held, duplicated
	// or lost gains a zero-length chaos.<verdict> annotation span.
	Tracer *trace.Tracer
	// Flight, when set, journals every injected fault as a chaos.fault
	// event and auto-dumps the recorder when a fault plan is installed
	// or a target crashes, preserving the pre-fault tail for triage.
	Flight *flight.Recorder
}

// Harness drives one chaos scenario: it owns the virtual clock, the
// network emulator, the crash/restart targets and the fault/recovery
// event log.
type Harness struct {
	opts  Options
	clock *Clock
	rec   *Recorder
	em    *netem

	mu      sync.Mutex
	targets map[string]*Target // guarded by mu
}

// New builds a harness over the given network and installs its network
// emulator (plan wrapper plus delay holder) on it.
func New(opts Options) (*Harness, error) {
	if opts.Network == nil {
		return nil, errors.New("chaos: harness needs a network")
	}
	if opts.Scenario == "" {
		opts.Scenario = "chaos"
	}
	clock := &Clock{}
	rec := newRecorder(opts.Scenario, clock)
	h := &Harness{
		opts:    opts,
		clock:   clock,
		rec:     rec,
		em:      newNetem(opts.Network, clock, rec, opts.Tracer, opts.Flight),
		targets: make(map[string]*Target),
	}
	rec.Event(MetricStep, "seed", float64(opts.Seed))
	return h, nil
}

// Close uninstalls the harness from the network, healing any plan.
func (h *Harness) Close() {
	h.opts.Network.SetPlan(nil)
	h.opts.Network.SetHolder(nil)
}

// Seed returns the scenario seed.
func (h *Harness) Seed() int64 { return h.opts.Seed }

// Now returns the current virtual time.
func (h *Harness) Now() time.Duration { return h.clock.Now() }

// Recorder returns the fault/recovery event log.
func (h *Harness) Recorder() *Recorder { return h.rec }

// Trace returns the message trace recorded so far.
func (h *Harness) Trace() []TraceEntry { return h.rec.Trace() }

// SetPlan installs the scenario fault plan on the network; nil heals.
func (h *Harness) SetPlan(p transport.FaultPlan) {
	h.em.setPlan(p)
	if p == nil {
		h.rec.Event(MetricHeal, "net", 0)
		return
	}
	// Snapshot the healthy baseline the moment faults start, so triage
	// can diff pre-fault behaviour against what the plan does next.
	h.opts.Flight.Trigger("chaos: fault plan installed (" + h.opts.Scenario + ")")
}

// Heal removes the fault plan. Messages already held stay held until
// the clock advances past their due time.
func (h *Harness) Heal() { h.SetPlan(nil) }

// HeldMessages returns how many delayed messages await release.
func (h *Harness) HeldMessages() int { return h.em.heldCount() }

// Advance moves the virtual clock forward by d, releasing every held
// message that falls due on the way, in due-time order.
func (h *Harness) Advance(d time.Duration) {
	target := h.clock.Now() + d
	h.em.release(target)
	h.clock.set(target)
}

// AddTarget registers a container the scenario may crash and restart.
func (h *Harness) AddTarget(t Target) error {
	if t.Container == nil {
		return errors.New("chaos: target needs a container")
	}
	if t.Addr == "" {
		return errors.New("chaos: target needs an address")
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	h.targets[t.Container.Name()] = &t
	return nil
}

// Crash kills every agent in the named target, detaches its transport
// endpoint and removes it from the directory: the process died. Sends
// to its address fail with ErrUnknownAddr until Restart.
func (h *Harness) Crash(name string) error {
	t, err := h.target(name)
	if err != nil {
		return err
	}
	for _, local := range t.Container.AgentNames() {
		if err := t.Container.KillAgent(local); err != nil {
			return err
		}
	}
	if err := t.Container.Detach(); err != nil {
		return err
	}
	if h.opts.Directory != nil {
		h.opts.Directory.Deregister(name)
	}
	h.rec.Event(MetricCrash, name, 1)
	h.opts.Flight.Trigger("chaos: crash " + name)
	return nil
}

// Restart re-attaches the named target under its address, rebuilds its
// agents through the Rewire hook and re-registers it with the
// directory — the crashed process came back and rejoined the grid.
func (h *Harness) Restart(name string) error {
	t, err := h.target(name)
	if err != nil {
		return err
	}
	if err := t.Container.AttachInProc(h.opts.Network, t.Addr); err != nil {
		return err
	}
	if t.Rewire != nil {
		if err := t.Rewire(); err != nil {
			return err
		}
	}
	if h.opts.Directory != nil && len(t.Services) > 0 {
		if err := h.opts.Directory.Register(t.Container.Registration(t.Services)); err != nil {
			return err
		}
	}
	h.rec.Event(MetricRestart, name, 1)
	return nil
}

func (h *Harness) target(name string) (*Target, error) {
	h.mu.Lock()
	defer h.mu.Unlock()
	t, ok := h.targets[name]
	if !ok {
		return nil, fmt.Errorf("chaos: unknown target %q", name)
	}
	return t, nil
}

// Step is one scheduled action in a scenario script.
type Step struct {
	// At is the virtual time the step fires.
	At time.Duration
	// Name labels the step in the event log.
	Name string
	// Do performs the step. Optional: a nil Do just advances the clock.
	Do func(h *Harness) error
}

// Scenario is a scripted fault schedule.
type Scenario struct {
	Name  string
	Steps []Step
}

// Run advances the clock to each step's time — releasing held messages
// on the way — and executes it. Steps run in At order; ties keep script
// order. The first failing step aborts the run.
func (h *Harness) Run(s Scenario) error {
	steps := append([]Step(nil), s.Steps...)
	sort.SliceStable(steps, func(i, j int) bool { return steps[i].At < steps[j].At })
	for i, st := range steps {
		if d := st.At - h.clock.Now(); d > 0 {
			h.Advance(d)
		}
		name := st.Name
		if name == "" {
			name = fmt.Sprintf("step-%02d", i)
		}
		h.rec.Event(MetricStep, name, float64(i))
		if st.Do == nil {
			continue
		}
		if err := st.Do(h); err != nil {
			return fmt.Errorf("chaos: scenario %s step %q: %w", s.Name, name, err)
		}
	}
	return nil
}
