// Package chaos is a deterministic, seed-driven fault-injection harness
// for grid experiments. It wraps an in-process transport network and a
// set of platform containers with a scheduled fault plan — message
// drop, fixed or jittered delay, duplication, reordering, bidirectional
// partitions between container groups, and container crash/restart —
// and runs scenarios on a virtual clock: time only moves when the
// scenario advances it, so a failing run replays exactly from its seed.
// Every injected fault and every recovery event is recorded through
// internal/obs, and invariant checkers (no lost acknowledged
// observations, replica convergence, no contract-net double award,
// processor-grid idleness) turn the recorded trace into grid-level
// assertions.
package chaos

import (
	"sync"
	"time"
)

// Clock is the harness's virtual time source: elapsed scenario time,
// starting at zero. It only moves when the harness advances it, never
// on its own, which keeps fault schedules reproducible.
type Clock struct {
	mu  sync.Mutex
	now time.Duration // guarded by mu
}

// Now returns the current virtual time.
func (c *Clock) Now() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// set moves the clock forward to t; the clock never goes backward.
func (c *Clock) set(t time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if t > c.now {
		c.now = t
	}
}
