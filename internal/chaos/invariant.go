package chaos

import (
	"bytes"
	"context"
	"fmt"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/analyze"
	"agentgrid/internal/obs"
	"agentgrid/internal/store"
)

// Invariants are grid-level safety checks scenarios assert after (or
// during) a fault schedule. Each returns nil when the invariant holds
// and a descriptive error when it does not.

// NoDoubleAward verifies the contract-net never awarded one task to two
// participants: across the whole trace, accept-proposal messages of one
// conversation name at most one distinct receiver. Duplicated accepts
// to the same winner (e.g. under Dup faults) are fine; two winners are
// not. Dropped accepts still count — the award decision was made even
// if the wire ate it.
func NoDoubleAward(trace []TraceEntry) error {
	winners := make(map[string]string) // conversation id -> receiver name
	for _, e := range trace {
		if e.Msg.Performative != acl.AcceptProposal || len(e.Msg.Receivers) == 0 {
			continue
		}
		conv := e.Msg.ConversationID
		rcv := e.Msg.Receivers[0].Name
		if prev, ok := winners[conv]; ok && prev != rcv {
			return fmt.Errorf("chaos: conversation %s awarded to both %s and %s", conv, prev, rcv)
		}
		winners[conv] = rcv
	}
	return nil
}

// ReplicasConverged verifies the given stores hold identical contents,
// byte-for-byte over their snapshots (encoding/json writes map keys in
// sorted order, so equal contents encode equally).
func ReplicasConverged(replicas ...*store.Store) error {
	if len(replicas) < 2 {
		return nil
	}
	base, err := store.MarshalSnapshot(replicas[0].Snapshot())
	if err != nil {
		return err
	}
	for i, r := range replicas[1:] {
		got, err := store.MarshalSnapshot(r.Snapshot())
		if err != nil {
			return err
		}
		if !bytes.Equal(base, got) {
			return fmt.Errorf("chaos: replica %d diverged from replica 0 (%d vs %d bytes)",
				i+1, len(got), len(base))
		}
	}
	return nil
}

// DeliveredBatchesStored verifies no acknowledged observation was lost:
// every record of every batch inform the network actually delivered to
// classifierAddr has its series present in the store. Dropped and
// unroutable batches are exempt (the collector saw the send fail and
// counted a ship error); held batches only count once released.
func DeliveredBatchesStored(trace []TraceEntry, classifierAddr string, st *store.Store) error {
	for _, e := range trace {
		if e.To != classifierAddr || (e.Verdict != "deliver" && e.Verdict != "dup") {
			continue
		}
		if e.Msg.Performative != acl.Inform || e.Msg.Language != "xml" {
			continue
		}
		batch, err := obs.UnmarshalBatch(e.Msg.Content)
		if err != nil {
			continue // delivered inform that is not a batch
		}
		for _, r := range batch.Records {
			if _, ok := st.Latest(r.Key()); !ok {
				return fmt.Errorf("chaos: delivered record %s missing from store (batch from %s)",
					r.Key(), batch.Collector)
			}
		}
	}
	return nil
}

// Idle verifies the processor grid drains its pending-task table within
// timeout. The wait is event-driven (Root.WaitIdle), not polled.
func Idle(root *analyze.Root, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	if !root.WaitIdle(ctx) {
		return fmt.Errorf("chaos: root not idle after %v; pending %v", timeout, root.PendingTasks())
	}
	return nil
}
