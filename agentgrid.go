// Package agentgrid is the public API of the agent-grid network
// management system — a reproduction of "Grids of Agents for Computer
// and Telecommunication Network Management" (Assunção, Westphall, Koch;
// Middleware 2003).
//
// The facade re-exports the pieces a downstream user composes:
//
//   - Grid (NewGrid/Start/AddGoal/CollectNow): a complete management
//     grid — collector, classifier, processor and interface grids wired
//     over an agent platform.
//   - Goal: a recurring collection intention against a managed device.
//   - FleetSpec / NewFleet: a simulated managed network whose devices
//     answer the grid's SNMP-like protocol.
//   - Rule DSL (see internal/rules): management rules loaded into the
//     processor grid and learnable at runtime.
//   - The sim package's architectures for the paper's evaluation are
//     reachable through the benchmarks and cmd/benchrunner.
//
// A minimal deployment:
//
//	grid, err := agentgrid.NewGrid(agentgrid.Config{
//	    Site:  "site1",
//	    Rules: `rule "hot" { when latest(cpu.util) > 90 then alert "hot {device}" }`,
//	})
//	if err != nil { ... }
//	ctx, cancel := context.WithCancel(context.Background())
//	defer cancel()
//	grid.Start(ctx)
//	defer grid.Stop()
//
//	fleet, _ := agentgrid.NewFleet(agentgrid.FleetSpec{Site: "site1", Hosts: 10, Seed: 1})
//	defer fleet.Close()
//	grid.AddGoals(agentgrid.GoalsFor(agentgrid.FleetSpec{Site: "site1", Hosts: 10, Seed: 1}, fleet, 30*time.Second))
package agentgrid

import (
	"time"

	"agentgrid/internal/collect"
	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/rules"
	"agentgrid/internal/workload"
)

// Config configures a management grid. See internal/core for field
// documentation.
type Config = core.Config

// Grid is a running management grid.
type Grid = core.Grid

// Goal is one recurring collection intention.
type Goal = collect.Goal

// Alert is one rule firing delivered to the interface grid.
type Alert = rules.Alert

// FleetSpec describes a simulated managed network.
type FleetSpec = workload.FleetSpec

// Fleet is a running simulated managed network.
type Fleet = device.Fleet

// NewGrid assembles a management grid from the configuration.
func NewGrid(cfg Config) (*Grid, error) { return core.NewGrid(cfg) }

// NewFleet starts the spec's devices behind SNMP endpoints with the
// given community ("public" by default in Config).
func NewFleet(spec FleetSpec, community string) (*Fleet, error) {
	return device.NewFleet(spec.BuildDevices(), community)
}

// GoalsFor builds one collection goal per fleet device, collected every
// interval.
func GoalsFor(spec FleetSpec, fleet *Fleet, interval time.Duration) []Goal {
	split := workload.Goals(spec, fleet, 1, interval)
	return split[0]
}

// ParseRules compiles rule-DSL source, reporting syntax errors without
// loading anything — handy for validating user-supplied rules.
func ParseRules(src string) error {
	_, err := rules.Parse(src)
	return err
}

// ParseGoalSpec parses the textual goal format used by the interface
// grid and gridctl: "goal <name> <site> <device> <class> <addr>
// <interval> [metrics...]".
func ParseGoalSpec(spec string) (*Goal, error) { return core.ParseGoalSpec(spec) }
