// Command migration demonstrates the paper's mobile-agent future work
// (§5): an analysis agent born on a compute container migrates — rules,
// beliefs and all — to the storage container, after which its analyses
// read the management store locally instead of pulling data across the
// network. The program prints the network units each strategy would
// cost (from the cost model) and then performs a real migration.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentgrid/internal/acl"
	"agentgrid/internal/agent"
	"agentgrid/internal/analyze"
	"agentgrid/internal/directory"
	"agentgrid/internal/mobility"
	"agentgrid/internal/obs"
	"agentgrid/internal/platform"
	"agentgrid/internal/rules"
	"agentgrid/internal/sim"
	"agentgrid/internal/store"
	"agentgrid/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// The economics first: shipping data every round vs migrating once.
	fmt.Println("=== cost model: ship data vs migrate the analyst ===")
	pts := sim.MobilityStudy(sim.DefaultParams(), 30, []int{1, 2, 4, 6, 8, 16})
	fmt.Println(sim.FormatMobility(pts))

	// Now the real mechanism, end to end.
	fmt.Println("=== live migration ===")
	net := transport.NewInProcNetwork()
	profile := directory.ResourceProfile{CPUCapacity: 100, NetCapacity: 100, DiscCapacity: 100}
	newC := func(name string) (*platform.Container, error) {
		c, err := platform.New(platform.Config{Name: name, Platform: name, Profile: profile})
		if err != nil {
			return nil, err
		}
		if err := c.AttachInProc(net, "inproc://"+name); err != nil {
			return nil, err
		}
		return c, nil
	}
	compute, err := newC("compute")
	if err != nil {
		return err
	}
	defer compute.Stop()
	storage, err := newC("storage")
	if err != nil {
		return err
	}
	defer storage.Stop()

	// The management data lives with the storage container.
	st := store.New(128)
	for i := 1; i <= 20; i++ {
		st.Append(obs.Record{Site: "site1", Device: "db-1", Metric: "cpu.util",
			Value: 90 + float64(i%8), Step: i, Time: time.Unix(int64(i), 0)})
	}

	mCompute, err := mobility.NewManager(compute)
	if err != nil {
		return err
	}
	mStorage, err := mobility.NewManager(storage)
	if err != nil {
		return err
	}
	if err := analyze.RegisterMobileAnalyst(mCompute, st); err != nil {
		return err
	}
	if err := analyze.RegisterMobileAnalyst(mStorage, st); err != nil {
		return err
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	compute.Start(ctx)
	storage.Start(ctx)

	// Born on compute with its knowledge.
	rb := rules.NewRuleBase()
	if _, err := rb.AddSource(`rule "sustained" level 2 category cpu severity critical {
        when avg(cpu.util, 10) > 90 then alert "sustained load on {device}"
    }`); err != nil {
		return err
	}
	if _, err := mCompute.Spawn(analyze.AnalystState("analyst", rb)); err != nil {
		return err
	}
	fmt.Println("analyst born on 'compute' with 1 rule")

	state, err := mCompute.CaptureState(analyze.MobileAnalystKind, "analyst", []byte(rb.Source()))
	if err != nil {
		return err
	}
	if err := mCompute.Migrate(ctx, state, mStorage.AID(storage.Addr()), 5*time.Second); err != nil {
		return err
	}
	arrived, _ := mStorage.Stats()
	_, departed := mCompute.Stats()
	fmt.Printf("migrated to 'storage' (arrived=%d departed=%d); knowledge travelled with it\n",
		arrived, departed)

	// Prove it still works where the data is: drive a task at it.
	probe, err := storage.SpawnAgent("probe")
	if err != nil {
		return err
	}
	done := make(chan *analyze.Result, 1)
	probe.HandleFunc(agent.Selector{Performative: acl.Inform},
		func(_ context.Context, _ *agent.Agent, m *acl.Message) {
			if res, err := analyze.DecodeResult(m.Content); err == nil {
				done <- res
			}
		})
	task := &analyze.Task{ID: "t1", Level: 2, Site: "site1", Device: "db-1",
		Categories: []string{"cpu"}, Step: 20}
	content, _ := analyze.EncodeTask(task)
	err = probe.Send(ctx, &acl.Message{
		Performative:   acl.Request,
		Receivers:      []acl.AID{acl.NewAID("analyst", "storage")},
		Content:        content,
		Language:       "json",
		Ontology:       acl.OntologyGridManagement,
		Protocol:       acl.ProtocolRequest,
		ConversationID: "t1",
		ReplyWith:      "task:t1",
	})
	if err != nil {
		return err
	}
	select {
	case res := <-done:
		fmt.Printf("post-migration analysis on local data: %d alert(s)\n", len(res.Alerts))
		for _, a := range res.Alerts {
			fmt.Printf("  %s\n", a)
		}
	case <-time.After(10 * time.Second):
		return fmt.Errorf("migrated analyst never answered")
	}
	return nil
}
