// Command datacenter monitors a 60-host server farm — the paper's
// motivating scenario of a management station drowning in data. It runs
// a grid with three collectors and four analysis hosts, injects faults
// into a few servers, lets several collection cycles run on a schedule,
// and serves live reports over HTTP while printing a summary.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"agentgrid"
	"agentgrid/internal/device"
)

const datacenterRules = `
# Level 1: immediate threshold scans on fresh data.
rule "cpu-critical" level 1 category cpu severity critical {
    when latest(cpu.util) > 95
    then alert "CPU critical on {device}"
}
rule "mem-low" level 1 category memory {
    when latest(mem.free) < 64
    then alert "memory nearly exhausted on {device}"
}
rule "proc-storm" level 1 category process {
    when latest(proc.count) > 2000
    then alert "process storm on {device}"
}

# Level 2: consolidation against stored history.
rule "cpu-sustained" level 2 category cpu severity critical {
    when avg(cpu.util, 10) > 85 and min(cpu.util, 10) > 70
    then alert "sustained CPU pressure on {device}"
}
rule "disk-filling" level 2 category disk {
    when trend(disk.free, 20) < -2 and latest(disk.free) < 45000
    then alert "disk trending toward full on {device}"
}

# Level 3: cross-device correlation over the whole site.
rule "farm-overload" level 3 category cpu severity critical {
    when count_above(cpu.util, 95) >= 3 and fleet_avg(cpu.util) > 40
    then alert "overload across the farm at {site}"
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site:       "farm",
		Collectors: 3,
		Analyzers:  4,
		Rules:      datacenterRules,
		Scheduler:  "capability",
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		return err
	}
	defer grid.Stop()

	spec := agentgrid.FleetSpec{Site: "farm", Hosts: 60, Seed: 2026}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		return err
	}
	defer fleet.Close()
	if err := grid.AddGoals(agentgrid.GoalsFor(spec, fleet, 150*time.Millisecond)); err != nil {
		return err
	}

	// Break a few servers.
	fleet.Stations()[3].Device.InjectFault(device.FaultCPUPegged)
	fleet.Stations()[17].Device.InjectFault(device.FaultCPUPegged)
	fleet.Stations()[41].Device.InjectFault(device.FaultCPUPegged)
	fleet.Stations()[8].Device.InjectFault(device.FaultMemLeak)
	fleet.Stations()[25].Device.InjectFault(device.FaultProcStorm)

	addr, err := grid.StartHTTP("127.0.0.1:0")
	if err != nil {
		return err
	}
	fmt.Printf("datacenter grid up: 60 hosts, 3 collectors, 4 analyzers\n")
	fmt.Printf("live reports at http://%s/site/farm (add ?format=html)\n\n", addr)

	// Let the scheduled goals run a few cycles while the fleet evolves.
	// A ticker (not a sleep) paces the cycles so a cancelled context
	// stops the demo immediately.
	cycleTick := time.NewTicker(200 * time.Millisecond)
	defer cycleTick.Stop()
	for cycle := 0; cycle < 5; cycle++ {
		fleet.Advance(2)
		select {
		case <-cycleTick.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	grid.WaitIdle(15 * time.Second)
	waitForAlerts(ctx, grid, 10*time.Second)

	// Summarize what the grid concluded.
	alerts := grid.Alerts()
	bySeverity := map[string]int{}
	byRule := map[string]int{}
	for _, a := range alerts {
		bySeverity[string(a.Severity)]++
		byRule[a.Rule]++
	}
	fmt.Printf("alerts after 5 cycles: %d total\n", len(alerts))
	var ruleNames []string
	for r := range byRule {
		ruleNames = append(ruleNames, r)
	}
	sort.Strings(ruleNames)
	for _, r := range ruleNames {
		fmt.Printf("  %-16s %4d\n", r, byRule[r])
	}

	stats := grid.Root().Stats()
	fmt.Printf("\nprocessor grid: %d notices, %d tasks dispatched, %d completed, %d reassigned\n",
		stats.Notices, stats.Dispatched, stats.Completed, stats.Reassigned)
	series, appends := grid.Store().Stats()
	fmt.Printf("store: %d series, %d observations\n", series, appends)

	// Per-worker distribution shows the load balancing at work.
	fmt.Println("\nanalysis distribution:")
	for i, w := range grid.Workers() {
		ws := w.Stats()
		fmt.Printf("  analyzer %d: %d tasks, %d alerts\n", i+1, ws.Tasks, ws.Alerts)
	}
	return nil
}

// waitForAlerts blocks until any alert arrives (or the timeout
// elapses) using the interface grid's alert subscription — an
// event-driven wait, not a polling loop.
func waitForAlerts(ctx context.Context, grid *agentgrid.Grid, timeout time.Duration) {
	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	grid.Interface().WaitAlert(wctx, nil)
}
