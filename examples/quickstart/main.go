// Command quickstart is the smallest end-to-end use of the agent grid:
// one simulated host, one rule, one collection cycle, and the resulting
// report and alerts printed to stdout.
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentgrid"
	"agentgrid/internal/device"
	"agentgrid/internal/report"
	"agentgrid/internal/trace"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A grid with one rule: alert when a host's CPU pegs.
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site: "site1",
		Rules: `
rule "hot-cpu" level 1 category cpu severity critical {
    when latest(cpu.util) > 90
    then alert "CPU above 90% on {device}"
}
rule "disk-low" level 2 category disk {
    when latest(disk.free) < 1000
    then alert "under 1GB free on {device}"
}`,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		return err
	}
	defer grid.Stop()

	// One simulated host behind an SNMP endpoint.
	spec := agentgrid.FleetSpec{Site: "site1", Hosts: 1, Seed: 42}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		return err
	}
	defer fleet.Close()

	// Monitor it.
	if err := grid.AddGoals(agentgrid.GoalsFor(spec, fleet, time.Second)); err != nil {
		return err
	}

	// Drive the device hot, advance its simulation and collect.
	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	fleet.Advance(5)
	if err := grid.CollectNow(ctx); err != nil {
		return err
	}
	grid.WaitIdle(10 * time.Second)
	waitForAlert(ctx, grid, "hot-cpu", 10*time.Second)

	// Print the management report and the alerts.
	rep, err := grid.Interface().BuildSiteReport("site1", time.Now().UTC())
	if err != nil {
		return err
	}
	text, err := report.Render(rep, report.FormatText)
	if err != nil {
		return err
	}
	fmt.Println(string(text))

	fmt.Println("Alerts:")
	for _, a := range grid.Alerts() {
		fmt.Printf("  %s\n", a)
	}

	// Show the causal trace behind the alert: every hop from the SNMP
	// poll through classification and analysis to the alert landing in
	// the interface grid, with the critical path marked.
	tr := grid.Tracer()
	tr.Flush()
	for _, id := range tr.Store().TraceIDs() {
		spans := tr.Store().Spans(id)
		for _, sp := range spans {
			if sp.Name == "report.alert" {
				fmt.Println("Trace of the alert (also: gridctl trace " + id + "):")
				fmt.Print(trace.Render(spans))
			}
		}
	}
	st := tr.Stats()
	fmt.Printf("Tracer: %d traces, %d spans stored, %d dropped\n",
		st.Traces, st.Spans, st.Dropped)

	// Final telemetry snapshot: every nonzero metric family, summed
	// across containers (full per-series detail lives at /metrics).
	fmt.Println("Telemetry (nonzero families):")
	for _, m := range grid.Metrics().Snapshot().Metrics {
		total := 0.0
		for _, s := range m.Series {
			if s.Hist != nil {
				total += float64(s.Hist.Count)
			} else {
				total += s.Value
			}
		}
		if total != 0 {
			fmt.Printf("  %-48s %g\n", m.Name, total)
		}
	}
	return nil
}

// waitForAlert blocks until the named rule has fired (or the timeout
// elapses) using the interface grid's alert subscription — an
// event-driven wait, not a polling loop.
func waitForAlert(ctx context.Context, grid *agentgrid.Grid, rule string, timeout time.Duration) {
	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	grid.Interface().WaitAlert(wctx, func(a agentgrid.Alert) bool { return a.Rule == rule })
}
