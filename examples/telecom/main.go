// Command telecom monitors a telecommunication backbone — routers and
// switches — and demonstrates level-3 cross-device fault correlation:
// when several routers lose links at once, the grid concludes a
// site-level outage rather than reporting isolated interface flaps
// ("problems that arose through the crossing of information from a whole
// complex of equipment and not just isolated data", §3.3).
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"agentgrid"
	"agentgrid/internal/device"
)

const telecomRules = `
# Per-interface availability (level 1).
rule "link-down" level 1 category availability severity critical {
    when latest(if.up.1) < 1
    then alert "interface 1 down on {device}"
}

# Traffic health per router (level 2): a live router keeps moving
# octets; a frozen counter means a wedged line card.
rule "traffic-stalled" level 2 category traffic {
    when rate(if.in.1, 5) == 0 and latest(if.up.1) == 1
    then alert "interface 1 up but passing no traffic on {device}"
}
rule "router-hot" level 2 category cpu {
    when avg(cpu.util, 10) > 80
    then alert "routing CPU sustained above 80% on {device}"
}

# Backbone-level correlation (level 3): simultaneous link loss across
# devices is one incident, not many.
rule "backbone-outage" level 3 category availability severity critical {
    when count_below(if.up.1, 1) >= 3
    then alert "backbone outage: 3+ routers lost links at {site}"
}
`

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site:       "backbone",
		Collectors: 2,
		Analyzers:  2,
		Rules:      telecomRules,
	})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		return err
	}
	defer grid.Stop()

	spec := agentgrid.FleetSpec{
		Site: "backbone", Routers: 6, Switches: 4,
		RouterIfs: 4, SwitchPorts: 12, Seed: 7,
	}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		return err
	}
	defer fleet.Close()
	if err := grid.AddGoals(agentgrid.GoalsFor(spec, fleet, time.Hour)); err != nil {
		return err
	}

	// Healthy baseline cycle.
	fleet.Advance(10)
	if err := grid.CollectNow(ctx); err != nil {
		return err
	}
	grid.WaitIdle(15 * time.Second)
	fmt.Printf("baseline cycle: %d alerts (expected none)\n", len(grid.Alerts()))

	// A fibre cut takes down links on three routers at once.
	for _, name := range []string{"router-01", "router-02", "router-03"} {
		st, ok := fleet.Station(name)
		if !ok {
			return fmt.Errorf("missing station %s", name)
		}
		st.Device.InjectFault(device.FaultLinkDown)
	}
	fleet.Advance(2)
	if err := grid.CollectNow(ctx); err != nil {
		return err
	}
	grid.WaitIdle(15 * time.Second)
	waitForRule(ctx, grid, "backbone-outage", 10*time.Second)

	fmt.Println("\nafter the fibre cut:")
	var isolated, correlated int
	for _, a := range grid.Alerts() {
		fmt.Printf("  %s\n", a)
		switch a.Rule {
		case "link-down":
			isolated++
		case "backbone-outage":
			correlated++
		}
	}
	fmt.Printf("\nper-device link alerts: %d; correlated site-level conclusions: %d\n",
		isolated, correlated)
	if correlated == 0 {
		return fmt.Errorf("level-3 correlation did not fire")
	}
	return nil
}

// waitForRule blocks until the named rule has fired (or the timeout
// elapses) using the interface grid's alert subscription — an
// event-driven wait, not a polling loop.
func waitForRule(ctx context.Context, grid *agentgrid.Grid, rule string, timeout time.Duration) {
	wctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()
	grid.Interface().WaitAlert(wctx, func(a agentgrid.Alert) bool { return a.Rule == rule })
}
