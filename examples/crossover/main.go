// Command crossover reproduces the paper's break-even analysis (§4 and
// future work): it sweeps the management workload volume through the
// three architectures of Figure 6 and reports where the centralized and
// multi-agent models stop fitting a management epoch while the agent
// grid still does — "the point at which the utilization of an agent
// grid becomes more advantageous".
package main

import (
	"fmt"

	"agentgrid/internal/sim"
	"agentgrid/internal/workload"
)

func main() {
	params := sim.DefaultParams()

	fmt.Println("=== Figure 6: the paper's three architectures at 10+10+10 requests ===")
	a, b, c := sim.Figure6(params)
	for _, o := range []*sim.Outcome{a, b, c} {
		fmt.Println(sim.FormatOutcome(o))
	}

	fmt.Println("=== Crossover: makespan vs volume (requests of each kind) ===")
	volumes := []int{1, 2, 3, 4, 6, 8, 12, 16, 24, 32, 48, 64}
	res := sim.Crossover(params, volumes)
	fmt.Println(res.Format())

	fmt.Println("=== Scaling: adding analysis hosts (volume 80 of each kind) ===")
	pts := sim.Scaling(params, workload.Mix{A: 80, B: 80, C: 80}, []int{1, 2, 4, 8, 16})
	fmt.Println(sim.FormatScaling(pts))

	fmt.Println("=== Where dividing further stops paying: clustering ablation ===")
	cl := sim.ClusteringStudy(200, 4, 16, 1)
	fmt.Println(sim.FormatClustering(cl))
	fmt.Println("random sharding loses most cross-metric correlations — the")
	fmt.Println("\"loss of meaning\" that bounds how far analysis can be divided.")
}
