# Makefile — convenience wrappers around the Go toolchain and the
# repo's verification gate (see verify.sh).

GO ?= go

.PHONY: all build test race lint lint-typed lint-sarif chaos trace metrics wire soak shard flight topo fuzz-smoke verify fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project-specific static analysis (cmd/gridlint). `make lint` fails
# when any analyzer reports an issue; see DESIGN.md for the analyzer
# list and the suppression syntax.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/gridlint ./...

# Type-aware tier: whole-module go/types analysis (lock order,
# held-lock I/O, view lifetimes, dropped wire-path errors), ratcheted
# against the checked-in baseline — new findings and stale baseline
# entries both fail.
lint-typed:
	$(GO) run ./cmd/gridlint -typed -baseline=lint.baseline.json ./...

# Both tiers rendered as SARIF 2.1.0 for code-review tooling (GitHub
# code scanning, SARIF viewers). Emits gridlint.sarif; the exit code
# still reflects findings, so `make lint-sarif` doubles as a gate.
lint-sarif:
	$(GO) run ./cmd/gridlint -typed -baseline=lint.baseline.json -format=sarif ./... > gridlint.sarif

# Deterministic chaos suite: the internal/chaos harness unit tests and
# the end-to-end grid scenarios, under the race detector. Fault
# schedules are seed-driven (seeds 1..3 are fixed in the tests), so a
# failure here reproduces exactly by re-running the named subtest.
chaos:
	$(GO) test -race -count=1 ./internal/chaos/...

# Tracing subsystem smoke: the trace package unit tests under the race
# detector plus the end-to-end assertion that one alert's trace covers
# all four sub-grids with a critical path and zero dropped spans.
trace:
	$(GO) test -race -count=1 ./internal/trace/...
	$(GO) test -race -count=1 -run TestTraceEndToEnd .

# Telemetry subsystem smoke: the metrics registry and instruments
# under the race detector, plus the Prometheus exposition golden test
# and the report server's /metrics, /healthz and /readyz endpoints.
metrics:
	$(GO) test -race -count=1 ./internal/telemetry/...
	$(GO) test -race -count=1 -run TestHTTP ./internal/report/

# Fast wire path smoke: the codec benchmarks with allocation counts
# (100 iterations is enough to surface an allocation regression on the
# zero-alloc paths — compare against BENCH_wire.json) plus a short
# differential fuzz pass proving the binary codec agrees with JSON and
# rejects hostile frames. Full numbers: see EXPERIMENTS.md.
wire:
	$(GO) test -run='^$$' -bench 'MarshalBinary|MarshalJSON|UnmarshalBinary|UnmarshalJSON|ReadFrameReuse|WireRoundTrip' -benchmem -benchtime 100x ./internal/acl
	$(GO) test -run='^$$' -bench 'NoticeWire|StoreAppendBatch' -benchmem -benchtime 100x ./internal/classify ./internal/store
	$(GO) test -run='^$$' -fuzz=FuzzCodecEquivalence -fuzztime=5s ./internal/acl
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalBinaryFrame -fuzztime=5s ./internal/acl
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalBinaryIntoEquivalence -fuzztime=5s ./internal/acl

# Sustained ingest soak: loopback-TCP pipeline at the target rate
# through the zero-alloc Into decode path, asserting steady-state
# throughput (>=1M msgs/s), allocs/msg and p99 latency. The canonical
# 10s run that produced BENCH_soak.json:
#   go run ./cmd/benchrunner soak -duration=10s -warmup=2s -out=BENCH_soak.json
soak:
	$(GO) run ./cmd/benchrunner soak -duration=2s -warmup=1s

# Store shard sweep: concurrent ingest (16 writers) against the striped
# store while analyzer-style readers loop federated full-store scans,
# crossed over shard counts x classifier partitions x series sizes.
# Asserts the sharded store's peak-contention cell sustains >=2x the
# 1-shard ingest rate. The canonical 2s run that produced
# BENCH_shard.json:
#   go run ./cmd/benchrunner shard -duration=2s -out=BENCH_shard.json
shard:
	$(GO) run ./cmd/benchrunner shard -duration=500ms -warmup=200ms

# Flight-recorder overhead gate: the flight package unit tests under
# the race detector, then the same sustained soak twice — a control
# run, and a run with the recorder journaling every inbound frame and
# the ingest histogram retaining trace exemplars — asserting the
# instrumented run holds >=95% of the control's throughput at ~0
# allocs/msg. The canonical 10s run that produced BENCH_flight.json:
#   go run ./cmd/benchrunner soak -flight -duration=10s -warmup=2s -baseline=BENCH_soak.json -out=BENCH_flight.json
flight:
	$(GO) test -race -count=1 ./internal/flight/
	$(GO) run ./cmd/benchrunner soak -duration=2s -warmup=1s -out=/tmp/soak_control.json
	$(GO) run ./cmd/benchrunner soak -flight -duration=2s -warmup=1s -baseline=/tmp/soak_control.json

# Topology-as-code suite: spec parser/validator, deploy/status/destroy
# lifecycle, chaos schedule, HTTP control plane and the equivalence
# tests against the hand-built examples — all under the race detector.
topo:
	$(GO) test -race -count=1 ./internal/topology/...
	$(GO) test -race -count=1 -run 'TestDetachedServer|TestSetInterface' ./internal/report/

# Short fuzz smoke over the wire-facing parsers. Five seconds each
# is enough to replay the corpus plus a quick mutation pass; longer
# sessions run `go test -fuzz=... -fuzztime=10m` by hand.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzDecodePDU -fuzztime=5s ./internal/snmp
	$(GO) test -run='^$$' -fuzz=FuzzParse -fuzztime=5s ./internal/rules
	$(GO) test -run='^$$' -fuzz=FuzzUnmarshalFrame -fuzztime=5s ./internal/acl
	$(GO) test -run='^$$' -fuzz=FuzzParseSpec -fuzztime=5s ./internal/topology

# The full gate: vet + gridlint + build + tests + race detector +
# chaos scenarios + fuzz smoke.
verify:
	./verify.sh

fmt:
	gofmt -w .
