# Makefile — convenience wrappers around the Go toolchain and the
# repo's verification gate (see verify.sh).

GO ?= go

.PHONY: all build test race lint verify fmt

all: build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Project-specific static analysis (cmd/gridlint). `make lint` fails
# when any analyzer reports an issue; see DESIGN.md for the analyzer
# list and the suppression syntax.
lint:
	$(GO) vet ./...
	$(GO) run ./cmd/gridlint ./...

# The full gate: vet + gridlint + build + tests + race detector.
verify:
	./verify.sh

fmt:
	gofmt -w .
