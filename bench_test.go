// Benchmarks regenerating the paper's evaluation. One benchmark per
// table/figure plus the extension studies; each reports the headline
// quantity as a custom metric so `go test -bench` output doubles as the
// experiment record (EXPERIMENTS.md is generated from these shapes).
package agentgrid_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"agentgrid/internal/core"
	"agentgrid/internal/device"
	"agentgrid/internal/loadbalance"
	"agentgrid/internal/metrics"
	"agentgrid/internal/obs"
	"agentgrid/internal/rules"
	"agentgrid/internal/sim"
	"agentgrid/internal/snmp"
	"agentgrid/internal/store"
	"agentgrid/internal/trace"
	"agentgrid/internal/workload"
)

// ---- Table 1 ----

// BenchmarkTable1Costs measures cost-model lookup — the primitive every
// simulated charge uses — and asserts the table totals stay the
// published values.
func BenchmarkTable1Costs(b *testing.B) {
	model := metrics.NewCostModel()
	var sum float64
	for i := 0; i < b.N; i++ {
		for _, k := range metrics.Kinds() {
			sum += model.Request(k).Total() + model.Parse(k).Total() +
				model.Inference(k).Total()
		}
		sum += model.Storing().Total() + model.CrossInference().Total()
	}
	// Per round: requests 60 + parses 45 + inferences 75 + storing 15 + cross 48.
	perRound := sum / float64(b.N)
	b.ReportMetric(perRound, "units/round")
	if perRound != 243 {
		b.Fatalf("Table 1 totals changed: %v", perRound)
	}
}

// ---- Figure 6 ----

func benchFigure6(b *testing.B, arch sim.Architecture) {
	mix := workload.PaperMix()
	var last *sim.Outcome
	for i := 0; i < b.N; i++ {
		last = arch.Run(mix)
	}
	b.ReportMetric(last.Makespan, "bottleneck-units")
	b.ReportMetric(last.MaxPerResource().Get(metrics.Network), "peak-net-units")
	b.ReportMetric(float64(last.HostCount()), "hosts")
}

func BenchmarkFigure6Centralized(b *testing.B) {
	benchFigure6(b, sim.Centralized{Params: sim.DefaultParams()})
}

func BenchmarkFigure6MultiAgent(b *testing.B) {
	benchFigure6(b, sim.MultiAgent{Params: sim.DefaultParams(), Collectors: 2})
}

func BenchmarkFigure6AgentGrid(b *testing.B) {
	benchFigure6(b, sim.AgentGrid{Params: sim.DefaultParams(), Collectors: 3, Analyzers: 2})
}

// ---- X1 crossover ----

func BenchmarkCrossoverSweep(b *testing.B) {
	volumes := []int{1, 2, 4, 8, 16, 32, 64}
	var res *sim.CrossoverResult
	for i := 0; i < b.N; i++ {
		res = sim.Crossover(sim.DefaultParams(), volumes)
	}
	b.ReportMetric(float64(res.Advantage), "advantage-volume")
	b.ReportMetric(float64(res.CentralizedLimit), "centralized-limit")
	b.ReportMetric(float64(res.GridLimit), "grid-limit")
}

// ---- X2 scaling ----

func BenchmarkScaling(b *testing.B) {
	for _, n := range []int{1, 2, 4, 8, 16} {
		b.Run(fmt.Sprintf("analyzers-%d", n), func(b *testing.B) {
			mix := workload.Mix{A: 80, B: 80, C: 80}
			var pts []sim.ScalingPoint
			for i := 0; i < b.N; i++ {
				pts = sim.Scaling(sim.DefaultParams(), mix, []int{1, n})
			}
			b.ReportMetric(pts[len(pts)-1].Speedup, "speedup")
		})
	}
}

// ---- X3 balancer ablation ----

func BenchmarkBalancer(b *testing.B) {
	for _, name := range loadbalance.Strategies() {
		b.Run(name, func(b *testing.B) {
			mix := workload.Mix{A: 40, B: 40, C: 40}
			var pts []sim.BalancerPoint
			for i := 0; i < b.N; i++ {
				pts = sim.BalancerAblation(sim.DefaultParams(), mix, 4, 42)
			}
			for _, pt := range pts {
				if pt.Strategy == name {
					b.ReportMetric(pt.Imbalance, "imbalance")
					b.ReportMetric(pt.Makespan, "makespan-units")
				}
			}
		})
	}
}

// ---- X4 mobility ----

func BenchmarkMobilityBreakEven(b *testing.B) {
	rounds := []int{1, 2, 4, 8, 16, 32}
	var be int
	for i := 0; i < b.N; i++ {
		be = sim.MobilityBreakEven(sim.MobilityStudy(sim.DefaultParams(), 30, rounds))
	}
	b.ReportMetric(float64(be), "break-even-rounds")
}

// ---- X5 replication ----

func BenchmarkReplicatedAppend(b *testing.B) {
	for _, replicas := range []int{1, 2, 3} {
		b.Run(fmt.Sprintf("replicas-%d", replicas), func(b *testing.B) {
			rs, err := store.NewReplicaSet(replicas, 4096)
			if err != nil {
				b.Fatal(err)
			}
			rec := obs.Record{Site: "s", Device: "d", Metric: "m", Value: 1, Step: 1}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				rec.Step = i
				if err := rs.Append(rec); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---- X6 clustering ----

func BenchmarkClusteringRecall(b *testing.B) {
	var pts []sim.ClusteringPoint
	for i := 0; i < b.N; i++ {
		pts = sim.ClusteringStudy(200, 4, 16, 1)
	}
	for _, pt := range pts {
		if pt.Strategy == "random-shard" {
			b.ReportMetric(pt.Recall, "shard-recall")
		}
	}
}

// ---- Substrate micro-benchmarks ----

func BenchmarkRuleEvaluationL2(b *testing.B) {
	st := store.New(128)
	for i := 1; i <= 100; i++ {
		st.Append(obs.Record{Site: "s", Device: "d", Metric: "cpu.util",
			Value: float64(i % 100), Step: i})
	}
	rb := rules.NewRuleBase()
	if _, err := rb.AddSource(`
rule "a" level 2 { when avg(cpu.util, 20) > 40 then alert "a" }
rule "b" level 2 { when trend(cpu.util, 20) > 0 and max(cpu.util, 20) > 90 then alert "b" }
rule "c" level 2 { when stddev(cpu.util, 20) > 10 then derive noisy }
rule "d" level 2 { when fact(noisy) and latest(cpu.util) > 50 then alert "d" }`); err != nil {
		b.Fatal(err)
	}
	env := &rules.DeviceEnv{Store: st, Site: "s", Device: "d"}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rules.Evaluate(rb, 2, env, rules.Scope{Site: "s", Device: "d"})
	}
}

func BenchmarkRuleParsing(b *testing.B) {
	src := `rule "r" priority 3 level 2 category cpu severity critical {
        when (avg(cpu.util, 10) > 90 or fact(hot)) and not latest(mem.free) < 100
        then alert "m {device}"
    }`
	for i := 0; i < b.N; i++ {
		if _, err := rules.Parse(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSNMPGetRoundtrip(b *testing.B) {
	d := device.NewHost("h", 1)
	st, err := device.StartStation(d, "127.0.0.1:0", "public")
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	cli := snmp.NewClient("public", snmp.WithTimeout(2*time.Second))
	oid := device.MetricOID(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cli.Get(context.Background(), st.Addr(), oid); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStoreAppend(b *testing.B) {
	st := store.New(4096)
	rec := obs.Record{Site: "s", Device: "d", Metric: "m", Value: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rec.Step = i
		st.Append(rec)
	}
}

func BenchmarkStoreWindowQuery(b *testing.B) {
	st := store.New(4096)
	for i := 0; i < 4096; i++ {
		st.Append(obs.Record{Site: "s", Device: "d", Metric: "m", Value: 1, Step: i})
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Window("s/d/m", 64)
	}
}

// ---- Tracing micro-benchmarks ----

// BenchmarkSpanStart measures opening, attributing and ending one child
// span under an existing trace — the per-hop cost every instrumented
// pipeline stage pays. The span's inline attribute array keeps the
// steady state allocation-lean (one allocation for the span itself);
// BENCH_trace.json records the baseline.
func BenchmarkSpanStart(b *testing.B) {
	tr := trace.New(trace.Options{ShardCapacity: 1 << 14})
	root := tr.StartRoot("bench.root")
	defer root.End()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp := root.Child("bench.child")
		sp.SetAttr("agent", "cg-1")
		sp.SetAttrInt("batch", 32)
		sp.End()
	}
}

// BenchmarkCollectorContended hammers the collector from every CPU:
// each goroutine runs its own traces, so spans spread over the
// lock-striped shards and End() contends only within a stripe. The
// drop counter is reported so a capacity regression is visible in the
// benchmark record.
func BenchmarkCollectorContended(b *testing.B) {
	tr := trace.New(trace.Options{Shards: 16, ShardCapacity: 1 << 14})
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			sp := tr.StartRoot("bench.contended")
			sp.SetAttr("agent", "pg-1")
			sp.End()
		}
	})
	b.StopTimer()
	b.ReportMetric(float64(tr.Dropped()), "dropped-spans")
}

// BenchmarkLivePipelineCycle measures one full collect→classify→analyze
// cycle of the real system over 10 devices.
func BenchmarkLivePipelineCycle(b *testing.B) {
	grid, err := core.NewGrid(core.Config{
		Site: "s",
		Rules: `rule "hot" level 1 { when latest(cpu.util) > 95 then alert "hot" }
rule "avg" level 2 { when avg(cpu.util, 5) > 85 then alert "avg" }`,
	})
	if err != nil {
		b.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		b.Fatal(err)
	}
	defer grid.Stop()
	spec := workload.FleetSpec{Site: "s", Hosts: 10, Seed: 1}
	fleet, err := device.NewFleet(spec.BuildDevices(), "public")
	if err != nil {
		b.Fatal(err)
	}
	defer fleet.Close()
	if err := grid.AddGoals(workload.Goals(spec, fleet, 1, time.Hour)[0]); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fleet.Advance(1)
		if err := grid.CollectNow(ctx); err != nil {
			b.Fatal(err)
		}
		if !grid.WaitIdle(30 * time.Second) {
			b.Fatal("grid did not drain")
		}
	}
}

// BenchmarkGridOverheadAblation isolates the coordination overhead the
// grid pays (dispatch + heartbeats) at the Figure 6 workload.
func BenchmarkGridOverheadAblation(b *testing.B) {
	for _, disabled := range []bool{false, true} {
		name := "with-overhead"
		if disabled {
			name = "without-overhead"
		}
		b.Run(name, func(b *testing.B) {
			arch := sim.AgentGrid{
				Params: sim.DefaultParams(), Collectors: 3, Analyzers: 2,
				DisableOverhead: disabled,
			}
			var last *sim.Outcome
			for i := 0; i < b.N; i++ {
				last = arch.Run(workload.PaperMix())
			}
			b.ReportMetric(last.Makespan, "bottleneck-units")
			b.ReportMetric(last.Overhead.Total(), "overhead-units")
		})
	}
}
