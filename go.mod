module agentgrid

go 1.22
