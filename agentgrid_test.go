package agentgrid_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"agentgrid"
	"agentgrid/internal/device"
	"agentgrid/internal/trace"
)

// TestFacadeQuickstart mirrors the package documentation: a downstream
// user can stand up a grid, monitor a fleet and read alerts using only
// the facade.
func TestFacadeQuickstart(t *testing.T) {
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site: "site1",
		Rules: `rule "hot" severity critical {
            when latest(cpu.util) > 101 then alert "impossible"
        }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer grid.Stop()

	spec := agentgrid.FleetSpec{Site: "site1", Hosts: 2, Seed: 11}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	goals := agentgrid.GoalsFor(spec, fleet, time.Hour)
	if len(goals) != 2 {
		t.Fatalf("goals = %d", len(goals))
	}
	if err := grid.AddGoals(goals); err != nil {
		t.Fatal(err)
	}
	if err := grid.CollectNow(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for {
		if n, _ := grid.Store().Stats(); n == 8 { // 2 hosts x 4 metrics
			break
		}
		select {
		case <-deadline:
			n, _ := grid.Store().Stats()
			t.Fatalf("series = %d", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

// TestTraceEndToEnd drives one alert through the whole pipeline and
// asserts the causal trace that comes out the other side: a single
// trace covers all four sub-grids (collector, classifier, processor,
// interface), the span tree reconstructs with a critical path rooted at
// the SNMP poll, and the collector ring dropped nothing.
func TestTraceEndToEnd(t *testing.T) {
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site: "site1",
		Rules: `rule "hot-cpu" level 1 category cpu severity critical {
            when latest(cpu.util) > 90
            then alert "CPU above 90% on {device}"
        }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer grid.Stop()

	spec := agentgrid.FleetSpec{Site: "site1", Hosts: 1, Seed: 7}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()
	if err := grid.AddGoals(agentgrid.GoalsFor(spec, fleet, time.Hour)); err != nil {
		t.Fatal(err)
	}

	fleet.Stations()[0].Device.InjectFault(device.FaultCPUPegged)
	fleet.Advance(5)
	if err := grid.CollectNow(ctx); err != nil {
		t.Fatal(err)
	}
	grid.WaitIdle(15 * time.Second)
	wctx, wcancel := context.WithTimeout(ctx, 15*time.Second)
	defer wcancel()
	if _, ok := grid.Interface().WaitAlert(wctx, func(a agentgrid.Alert) bool {
		return a.Rule == "hot-cpu"
	}); !ok {
		t.Fatal("hot-cpu alert never arrived")
	}

	tr := grid.Tracer()
	tr.Flush()

	// Find the trace that reached the interface grid.
	var spans []trace.Span
	for _, id := range tr.Store().TraceIDs() {
		candidate := tr.Store().Spans(id)
		for _, sp := range candidate {
			if sp.Name == "report.alert" {
				spans = candidate
			}
		}
	}
	if spans == nil {
		t.Fatal("no trace contains a report.alert span")
	}

	// One trace, four sub-grids.
	names := make(map[string]bool)
	for _, sp := range spans {
		names[sp.Name] = true
	}
	for _, want := range []string{"collect.poll", "collect.ship", "classify.ingest", "report.alert"} {
		if !names[want] {
			t.Errorf("trace missing %s span (have %v)", want, keys(names))
		}
	}
	if !names["analyze.l1"] && !names["analyze.l2"] && !names["analyze.l3"] {
		t.Errorf("trace has no processor-grid analysis span (have %v)", keys(names))
	}

	// The tree reconstructs and the critical path starts at the poll.
	roots := trace.BuildTree(spans)
	if len(roots) == 0 {
		t.Fatal("span tree did not reconstruct")
	}
	path := trace.CriticalPath(roots)
	if len(path) == 0 {
		t.Fatal("no critical path")
	}
	if path[0].Span.Name != "collect.poll" {
		t.Errorf("critical path starts at %s, want collect.poll", path[0].Span.Name)
	}
	if out := trace.Render(spans); !strings.Contains(out, "critical path:") {
		t.Errorf("render has no critical path line:\n%s", out)
	}

	// Nothing was shed on the way.
	if d := tr.Dropped(); d != 0 {
		t.Errorf("collector dropped %d spans in a non-chaos run", d)
	}
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestFacadeParseRules(t *testing.T) {
	if err := agentgrid.ParseRules(`rule "ok" { when latest(x) > 1 then alert "m" }`); err != nil {
		t.Fatal(err)
	}
	if err := agentgrid.ParseRules("rule {"); err == nil {
		t.Fatal("bad rules accepted")
	}
}

func TestFacadeParseGoalSpec(t *testing.T) {
	goal, err := agentgrid.ParseGoalSpec("goal g site1 dev host - 5s")
	if err != nil || goal.Name != "g" {
		t.Fatalf("goal = %+v, %v", goal, err)
	}
}
