package agentgrid_test

import (
	"context"
	"testing"
	"time"

	"agentgrid"
)

// TestFacadeQuickstart mirrors the package documentation: a downstream
// user can stand up a grid, monitor a fleet and read alerts using only
// the facade.
func TestFacadeQuickstart(t *testing.T) {
	grid, err := agentgrid.NewGrid(agentgrid.Config{
		Site: "site1",
		Rules: `rule "hot" severity critical {
            when latest(cpu.util) > 101 then alert "impossible"
        }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if err := grid.Start(ctx); err != nil {
		t.Fatal(err)
	}
	defer grid.Stop()

	spec := agentgrid.FleetSpec{Site: "site1", Hosts: 2, Seed: 11}
	fleet, err := agentgrid.NewFleet(spec, "public")
	if err != nil {
		t.Fatal(err)
	}
	defer fleet.Close()

	goals := agentgrid.GoalsFor(spec, fleet, time.Hour)
	if len(goals) != 2 {
		t.Fatalf("goals = %d", len(goals))
	}
	if err := grid.AddGoals(goals); err != nil {
		t.Fatal(err)
	}
	if err := grid.CollectNow(ctx); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(15 * time.Second)
	for {
		if n, _ := grid.Store().Stats(); n == 8 { // 2 hosts x 4 metrics
			break
		}
		select {
		case <-deadline:
			n, _ := grid.Store().Stats()
			t.Fatalf("series = %d", n)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func TestFacadeParseRules(t *testing.T) {
	if err := agentgrid.ParseRules(`rule "ok" { when latest(x) > 1 then alert "m" }`); err != nil {
		t.Fatal(err)
	}
	if err := agentgrid.ParseRules("rule {"); err == nil {
		t.Fatal("bad rules accepted")
	}
}

func TestFacadeParseGoalSpec(t *testing.T) {
	goal, err := agentgrid.ParseGoalSpec("goal g site1 dev host - 5s")
	if err != nil || goal.Name != "g" {
		t.Fatalf("goal = %+v, %v", goal, err)
	}
}
